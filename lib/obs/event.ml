open Atmo_util

type dir = Dir_send | Dir_recv

type t =
  | Syscall_enter of { thread : int; sysno : int }
  | Syscall_exit of { thread : int; sysno : int; errno : Errno.t option }
  | Page_alloc of { addr : int; order : int }
  | Page_free of { addr : int; order : int }
  | Superpage_merge of { head : int; order : int }
  | Ep_create of { container : int }
  | Ep_send of { ep : int; sender : int; receiver : int }
  | Ep_recv of { ep : int; receiver : int; sender : int }
  | Ep_block of { ep : int; thread : int; dir : dir }
  | Mmu_walk of { vaddr : int; ok : bool }
  | Pte_touch of { table : int; index : int }
  | Drv_doorbell of { device : int; queue : int }
  | Drv_completion of { device : int; count : int }
  | Lock_acquire of { cpu : int; wait_cycles : int }
  | Tlb_hit of { vaddr : int }
  | Tlb_miss of { vaddr : int }
  | Tlb_flush of { asid : int; entries : int }
  | Ep_fastpath of { ep : int; sender : int; receiver : int }
  | Span_begin of { span : int; parent : int; kind : int; owner : int }
  | Span_end of { span : int; kind : int; owner : int }
  | Causal of { edge : int; src : int; dst : int }
  | Dev_fault of { device : int; fault : int }
  | Dev_recover of { device : int; fault : int }
  | Span_pair of { span : int; parent : int; kind : int; owner : int }

type record = { ts : int; cpu : int; ev : t }

(* Keep in declaration order of [Atmo_spec.Syscall.t]; the cross-check
   lives in test_obs so the two libraries cannot drift silently. *)
let syscall_names =
  [|
    "mmap"; "munmap"; "mprotect"; "new_container"; "new_process"; "new_thread";
    "new_endpoint"; "close_endpoint"; "send"; "recv"; "send_nb"; "recv_nb";
    "recv_reject"; "yield"; "terminate_container"; "terminate_process";
    "assign_device"; "io_map"; "io_unmap"; "register_irq"; "irq_fire";
  |]

let syscall_count = Array.length syscall_names

let syscall_name n =
  if n >= 0 && n < syscall_count then syscall_names.(n)
  else Printf.sprintf "sys?%d" n

(* Span kind codes are one byte.  1-15 are fixed structural kinds,
   16-63 are application-registered kinds (named via the Span registry;
   the raw decoder only knows the code), 64+ are syscall spans keyed by
   syscall number. *)
let span_kind_name = function
  | 1 -> "request"
  | 2 -> "ipc_rendezvous"
  | 3 -> "ctx_switch"
  | 4 -> "mmu_fill"
  | 5 -> "drv_submit"
  | 6 -> "drv_complete"
  | 7 -> "irq"
  | 8 -> "user"
  | 9 -> "lock_wait"
  | n when n >= 64 -> "sys_" ^ syscall_name (n - 64)
  | n when n >= 16 -> Printf.sprintf "app%d" n
  | n -> Printf.sprintf "span%d" n

let causal_name = function
  | 1 -> "ipc"
  | 2 -> "irq"
  | 3 -> "drv"
  | 4 -> "wakeup"
  | n -> Printf.sprintf "edge%d" n

(* Device-fault codes carried by [Dev_fault]/[Dev_recover].  Kept in
   sync with [Atmo_devmodel.Fault.code] (obs cannot depend on devmodel;
   the cross-check lives in test_devmodel). *)
let fault_name = function
  | 1 -> "malformed-desc"
  | 2 -> "short-desc"
  | 3 -> "spurious-irq"
  | 4 -> "irq-storm"
  | 5 -> "reorder-completion"
  | 6 -> "duplicate-completion"
  | 7 -> "dma-escape"
  | n -> Printf.sprintf "fault%d" n

(* ------------------------------------------------------------------ *)
(* Tags                                                                *)

(* 1-based tag byte of each constructor (0 marks an empty slot); the
   same codes index [fields]/[decode] and the sink's per-tag filter
   bitmask, sampling shifts, and emitted/sampled-out counters. *)
let tag_syscall_enter = 1
let tag_syscall_exit = 2
let tag_page_alloc = 3
let tag_page_free = 4
let tag_superpage_merge = 5
let tag_ep_create = 6
let tag_ep_send = 7
let tag_ep_recv = 8
let tag_ep_block = 9
let tag_mmu_walk = 10
let tag_pte_touch = 11
let tag_drv_doorbell = 12
let tag_drv_completion = 13
let tag_lock_acquire = 14
let tag_tlb_hit = 15
let tag_tlb_miss = 16
let tag_tlb_flush = 17
let tag_ep_fastpath = 18
let tag_span_begin = 19
let tag_span_end = 20
let tag_causal = 21
let tag_dev_fault = 22
let tag_dev_recover = 23
let tag_span_pair = 24
let tag_count = 24

(* Index 0 is the empty slot and has no name. *)
let tag_names =
  [|
    ""; "syscall_enter"; "syscall_exit"; "page_alloc"; "page_free";
    "superpage_merge"; "ep_create"; "ep_send"; "ep_recv"; "ep_block";
    "mmu_walk"; "pte_touch"; "drv_doorbell"; "drv_completion";
    "lock_acquire"; "tlb_hit"; "tlb_miss"; "tlb_flush"; "ep_fastpath";
    "span_begin"; "span_end"; "causal"; "dev_fault"; "dev_recover";
    "span_pair";
  |]

let tag_name t = if t >= 1 && t <= tag_count then tag_names.(t) else Printf.sprintf "tag?%d" t

let tag_of_name name =
  let rec go i = if i > tag_count then None else if tag_names.(i) = name then Some i else go (i + 1) in
  go 1

let all_tags_mask = ((1 lsl (tag_count + 1)) - 1) land lnot 1

let kind = function
  | Syscall_enter _ -> "syscall_enter"
  | Syscall_exit _ -> "syscall_exit"
  | Page_alloc _ -> "page_alloc"
  | Page_free _ -> "page_free"
  | Superpage_merge _ -> "superpage_merge"
  | Ep_create _ -> "ep_create"
  | Ep_send _ -> "ep_send"
  | Ep_recv _ -> "ep_recv"
  | Ep_block _ -> "ep_block"
  | Mmu_walk _ -> "mmu_walk"
  | Pte_touch _ -> "pte_touch"
  | Drv_doorbell _ -> "drv_doorbell"
  | Drv_completion _ -> "drv_completion"
  | Lock_acquire _ -> "lock_acquire"
  | Tlb_hit _ -> "tlb_hit"
  | Tlb_miss _ -> "tlb_miss"
  | Tlb_flush _ -> "tlb_flush"
  | Ep_fastpath _ -> "ep_fastpath"
  | Span_begin _ -> "span_begin"
  | Span_end _ -> "span_end"
  | Causal _ -> "causal"
  | Dev_fault _ -> "dev_fault"
  | Dev_recover _ -> "dev_recover"
  | Span_pair _ -> "span_pair"

(* ------------------------------------------------------------------ *)
(* Binary encoding                                                     *)

(* One event is a fixed 40-byte slot:
     byte  0      tag (1-based; 0 means "empty slot")
     byte  1      small auxiliary field (sysno / order / dir / flag)
     byte  2      cpu
     bytes 3-7    reserved (zero)
     bytes 8-15   timestamp, cycles, u64 LE
     bytes 16-23  field a, u64 LE
     bytes 24-31  field b, u64 LE
     bytes 32-39  field c, u64 LE *)
let slot_bytes = 40

let errno_code = function
  | Errno.Enomem -> 1
  | Errno.Equota -> 2
  | Errno.Einval -> 3
  | Errno.Esrch -> 4
  | Errno.Eperm -> 5
  | Errno.Efull -> 6
  | Errno.Eexist -> 7
  | Errno.Ewouldblock -> 8
  | Errno.Ebusy -> 9

let errno_of_code = function
  | 1 -> Some Errno.Enomem
  | 2 -> Some Errno.Equota
  | 3 -> Some Errno.Einval
  | 4 -> Some Errno.Esrch
  | 5 -> Some Errno.Eperm
  | 6 -> Some Errno.Efull
  | 7 -> Some Errno.Eexist
  | 8 -> Some Errno.Ewouldblock
  | 9 -> Some Errno.Ebusy
  | _ -> None

let fields = function
  | Syscall_enter { thread; sysno } -> (1, sysno, thread, 0, 0)
  | Syscall_exit { thread; sysno; errno } ->
    (2, sysno, thread, (match errno with None -> 0 | Some e -> errno_code e), 0)
  | Page_alloc { addr; order } -> (3, order, addr, 0, 0)
  | Page_free { addr; order } -> (4, order, addr, 0, 0)
  | Superpage_merge { head; order } -> (5, order, head, 0, 0)
  | Ep_create { container } -> (6, 0, container, 0, 0)
  | Ep_send { ep; sender; receiver } -> (7, 0, ep, sender, receiver)
  | Ep_recv { ep; receiver; sender } -> (8, 0, ep, receiver, sender)
  | Ep_block { ep; thread; dir } ->
    (9, (match dir with Dir_send -> 0 | Dir_recv -> 1), ep, thread, 0)
  | Mmu_walk { vaddr; ok } -> (10, (if ok then 1 else 0), vaddr, 0, 0)
  | Pte_touch { table; index } -> (11, 0, table, index, 0)
  | Drv_doorbell { device; queue } -> (12, 0, device, queue, 0)
  | Drv_completion { device; count } -> (13, 0, device, count, 0)
  | Lock_acquire { cpu; wait_cycles } -> (14, 0, cpu, wait_cycles, 0)
  | Tlb_hit { vaddr } -> (15, 0, vaddr, 0, 0)
  | Tlb_miss { vaddr } -> (16, 0, vaddr, 0, 0)
  | Tlb_flush { asid; entries } -> (17, 0, asid, entries, 0)
  | Ep_fastpath { ep; sender; receiver } -> (18, 0, ep, sender, receiver)
  | Span_begin { span; parent; kind; owner } -> (19, kind land 0xff, span, parent, owner)
  | Span_end { span; kind; owner } -> (20, kind land 0xff, span, owner, 0)
  | Causal { edge; src; dst } -> (21, edge land 0xff, src, dst, 0)
  | Dev_fault { device; fault } -> (22, fault land 0xff, device, 0, 0)
  | Dev_recover { device; fault } -> (23, fault land 0xff, device, 0, 0)
  | Span_pair { span; parent; kind; owner } -> (24, kind land 0xff, span, parent, owner)

let tag_of ev =
  let tag, _, _, _, _ = fields ev in
  tag

let encode ~ts ~cpu ev =
  let tag, aux, a, b, c = fields ev in
  let buf = Bytes.make slot_bytes '\000' in
  Bytes.set_uint8 buf 0 tag;
  Bytes.set_uint8 buf 1 aux;
  Bytes.set_uint8 buf 2 (cpu land 0xff);
  Bytes.set_int64_le buf 8 (Int64.of_int ts);
  Bytes.set_int64_le buf 16 (Int64.of_int a);
  Bytes.set_int64_le buf 24 (Int64.of_int b);
  Bytes.set_int64_le buf 32 (Int64.of_int c);
  buf

(* Decode one slot at an arbitrary arena offset — the sink's merged
   stream decodes rings in place instead of [Bytes.sub]-ing every slot. *)
let decode_at buf off =
  if off < 0 || Bytes.length buf - off < slot_bytes then None
  else begin
    let tag = Bytes.get_uint8 buf off in
    let aux = Bytes.get_uint8 buf (off + 1) in
    let cpu = Bytes.get_uint8 buf (off + 2) in
    let ts = Int64.to_int (Bytes.get_int64_le buf (off + 8)) in
    let a = Int64.to_int (Bytes.get_int64_le buf (off + 16)) in
    let b = Int64.to_int (Bytes.get_int64_le buf (off + 24)) in
    let c = Int64.to_int (Bytes.get_int64_le buf (off + 32)) in
    let ev =
      match tag with
      | 1 -> Some (Syscall_enter { thread = a; sysno = aux })
      | 2 -> Some (Syscall_exit { thread = a; sysno = aux; errno = errno_of_code b })
      | 3 -> Some (Page_alloc { addr = a; order = aux })
      | 4 -> Some (Page_free { addr = a; order = aux })
      | 5 -> Some (Superpage_merge { head = a; order = aux })
      | 6 -> Some (Ep_create { container = a })
      | 7 -> Some (Ep_send { ep = a; sender = b; receiver = c })
      | 8 -> Some (Ep_recv { ep = a; receiver = b; sender = c })
      | 9 ->
        Some (Ep_block { ep = a; thread = b; dir = (if aux = 0 then Dir_send else Dir_recv) })
      | 10 -> Some (Mmu_walk { vaddr = a; ok = aux = 1 })
      | 11 -> Some (Pte_touch { table = a; index = b })
      | 12 -> Some (Drv_doorbell { device = a; queue = b })
      | 13 -> Some (Drv_completion { device = a; count = b })
      | 14 -> Some (Lock_acquire { cpu = a; wait_cycles = b })
      | 15 -> Some (Tlb_hit { vaddr = a })
      | 16 -> Some (Tlb_miss { vaddr = a })
      | 17 -> Some (Tlb_flush { asid = a; entries = b })
      | 18 -> Some (Ep_fastpath { ep = a; sender = b; receiver = c })
      | 19 -> Some (Span_begin { span = a; parent = b; kind = aux; owner = c })
      | 20 -> Some (Span_end { span = a; kind = aux; owner = b })
      | 21 -> Some (Causal { edge = aux; src = a; dst = b })
      | 22 -> Some (Dev_fault { device = a; fault = aux })
      | 23 -> Some (Dev_recover { device = a; fault = aux })
      | 24 -> Some (Span_pair { span = a; parent = b; kind = aux; owner = c })
      | _ -> None
    in
    Option.map (fun ev -> { ts; cpu; ev }) ev
  end

let decode buf = decode_at buf 0

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Syscall_enter { thread; sysno } ->
    Format.fprintf ppf "syscall_enter  %-18s thread=0x%x" (syscall_name sysno) thread
  | Syscall_exit { thread; sysno; errno } ->
    Format.fprintf ppf "syscall_exit   %-18s thread=0x%x %s" (syscall_name sysno) thread
      (match errno with None -> "ok" | Some e -> Errno.to_string e)
  | Page_alloc { addr; order } ->
    Format.fprintf ppf "page_alloc     addr=0x%x order=%d" addr order
  | Page_free { addr; order } ->
    Format.fprintf ppf "page_free      addr=0x%x order=%d" addr order
  | Superpage_merge { head; order } ->
    Format.fprintf ppf "superpage_merge head=0x%x order=%d" head order
  | Ep_create { container } -> Format.fprintf ppf "ep_create      container=0x%x" container
  | Ep_send { ep; sender; receiver } ->
    Format.fprintf ppf "ep_send        ep=0x%x sender=0x%x receiver=0x%x" ep sender receiver
  | Ep_recv { ep; receiver; sender } ->
    Format.fprintf ppf "ep_recv        ep=0x%x receiver=0x%x sender=0x%x" ep receiver sender
  | Ep_block { ep; thread; dir } ->
    Format.fprintf ppf "ep_block       ep=0x%x thread=0x%x dir=%s" ep thread
      (match dir with Dir_send -> "send" | Dir_recv -> "recv")
  | Mmu_walk { vaddr; ok } ->
    Format.fprintf ppf "mmu_walk       vaddr=0x%x %s" vaddr (if ok then "hit" else "miss")
  | Pte_touch { table; index } ->
    Format.fprintf ppf "pte_touch      table=0x%x index=%d" table index
  | Drv_doorbell { device; queue } ->
    Format.fprintf ppf "drv_doorbell   device=%d queue=%d" device queue
  | Drv_completion { device; count } ->
    Format.fprintf ppf "drv_completion device=%d count=%d" device count
  | Lock_acquire { cpu; wait_cycles } ->
    Format.fprintf ppf "lock_acquire   cpu=%d wait=%d" cpu wait_cycles
  | Tlb_hit { vaddr } -> Format.fprintf ppf "tlb_hit        vaddr=0x%x" vaddr
  | Tlb_miss { vaddr } -> Format.fprintf ppf "tlb_miss       vaddr=0x%x" vaddr
  | Tlb_flush { asid; entries } ->
    Format.fprintf ppf "tlb_flush      asid=0x%x entries=%d" asid entries
  | Ep_fastpath { ep; sender; receiver } ->
    Format.fprintf ppf "ep_fastpath    ep=0x%x sender=0x%x receiver=0x%x" ep sender receiver
  | Span_begin { span; parent; kind; owner } ->
    Format.fprintf ppf "span_begin     %-14s #%d parent=#%d owner=0x%x" (span_kind_name kind)
      span parent owner
  | Span_end { span; kind; owner } ->
    Format.fprintf ppf "span_end       %-14s #%d owner=0x%x" (span_kind_name kind) span owner
  | Causal { edge; src; dst } ->
    Format.fprintf ppf "causal         %-14s #%d -> #%d" (causal_name edge) src dst
  | Dev_fault { device; fault } ->
    Format.fprintf ppf "dev_fault      device=%d %s" device (fault_name fault)
  | Dev_recover { device; fault } ->
    Format.fprintf ppf "dev_recover    device=%d %s" device (fault_name fault)
  | Span_pair { span; parent; kind; owner } ->
    Format.fprintf ppf "span_pair      %-14s #%d parent=#%d owner=0x%x" (span_kind_name kind)
      span parent owner

let pp_record ppf r =
  Format.fprintf ppf "[cpu%d @%10d] %a" r.cpu r.ts pp r.ev
