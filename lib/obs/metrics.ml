(* Monotonic counters and log2-bucketed latency histograms, with a
   process-global registry keyed by name.  Values are cycle-clock deltas
   (or any non-negative integer); bucket [i] covers [2^i, 2^(i+1)), with
   bucket 0 absorbing 0 and 1. *)

module Counter = struct
  type t = { name : string; mutable v : int }

  let make name = { name; v = 0 }
  let name t = t.name
  let incr ?(by = 1) t = if by > 0 then t.v <- t.v + by
  let value t = t.v
  let reset t = t.v <- 0
end

module Histogram = struct
  let bucket_count = 63

  type t = {
    name : string;
    counts : int array;
    mutable n : int;
    mutable sum : int;
    mutable vmin : int;
    mutable vmax : int;
  }

  let make name =
    { name; counts = Array.make bucket_count 0; n = 0; sum = 0; vmin = max_int; vmax = 0 }

  let name t = t.name

  let bucket_of v =
    if v <= 1 then 0
    else begin
      let b = ref 0 in
      let x = ref v in
      while !x > 1 do
        incr b;
        x := !x lsr 1
      done;
      min !b (bucket_count - 1)
    end

  let observe t v =
    let v = max 0 v in
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.n <- t.n + 1;
    t.sum <- t.sum + v;
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v

  let count t = t.n
  let sum t = t.sum
  let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n
  let min_value t = if t.n = 0 then 0 else t.vmin
  let max_value t = t.vmax

  (* Upper edge of the bucket holding the q-th ranked observation,
     clamped to the observed extremes.  Monotone in q by construction
     (cumulative counts are non-decreasing). *)
  let quantile t q =
    if t.n = 0 then 0
    else begin
      let q = Float.min 1. (Float.max 0. q) in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int t.n))) in
      let rec go i cum =
        if i >= bucket_count then t.vmax
        else begin
          let cum = cum + t.counts.(i) in
          if cum >= rank then
            let upper = if i >= 62 then max_int else (1 lsl (i + 1)) - 1 in
            max (min upper t.vmax) (min_value t)
          else go (i + 1) cum
        end
      in
      go 0 0
    end

  let p50 t = quantile t 0.50
  let p90 t = quantile t 0.90
  let p99 t = quantile t 0.99

  let reset t =
    Array.fill t.counts 0 bucket_count 0;
    t.n <- 0;
    t.sum <- 0;
    t.vmin <- max_int;
    t.vmax <- 0

  let buckets t = Array.copy t.counts

  (* Accumulate [src] into [dst] bucket-by-bucket: per-CPU shards share
     the bucket edges, so merging loses no precision — every sample
     lands in the same bucket it was observed into. *)
  let merge ~into src =
    if into != src then begin
      for i = 0 to bucket_count - 1 do
        into.counts.(i) <- into.counts.(i) + src.counts.(i)
      done;
      into.n <- into.n + src.n;
      into.sum <- into.sum + src.sum;
      if src.n > 0 then begin
        if src.vmin < into.vmin then into.vmin <- src.vmin;
        if src.vmax > into.vmax then into.vmax <- src.vmax
      end
    end

  let pp_row ppf t =
    Format.fprintf ppf "%-26s %8d %12.1f %10d %10d %10d %10d" t.name t.n (mean t)
      (p50 t) (p90 t) (p99 t) (max_value t)
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let counters : (string, Counter.t) Hashtbl.t = Hashtbl.create 32
let histograms : (string, Histogram.t) Hashtbl.t = Hashtbl.create 32

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
    let c = Counter.make name in
    Hashtbl.replace counters name c;
    c

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
    let h = Histogram.make name in
    Hashtbl.replace histograms name h;
    h

let bump ?by name = Counter.incr ?by (counter name)
let observe name v = Histogram.observe (histogram name) v

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let all_counters () = sorted_bindings counters
let all_histograms () = sorted_bindings histograms

(* Zero values in place rather than dropping registrations: hot paths
   (the MMU, the TLB) hold counter handles obtained once at module
   initialisation, and those must keep feeding the registry across
   resets. *)
let reset () =
  Hashtbl.iter (fun _ c -> Counter.reset c) counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) histograms

(* Deterministic full-registry snapshot: both tables sorted by name,
   zero-valued entries included, so two dumps of identical registries
   compare equal regardless of hash-table insertion order. *)
let dump () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, c) -> Buffer.add_string b (Printf.sprintf "counter %s %d\n" name (Counter.value c)))
    (all_counters ());
  List.iter
    (fun (name, h) ->
      Buffer.add_string b
        (Printf.sprintf "histogram %s count=%d sum=%d min=%d p50=%d p99=%d max=%d\n" name
           (Histogram.count h) (Histogram.sum h) (Histogram.min_value h) (Histogram.p50 h)
           (Histogram.p99 h) (Histogram.max_value h)))
    (all_histograms ());
  Buffer.contents b

let pp_table ppf () =
  let hs = List.filter (fun (_, h) -> Histogram.count h > 0) (all_histograms ()) in
  if hs <> [] then begin
    Format.fprintf ppf "%-26s %8s %12s %10s %10s %10s %10s@." "histogram" "count"
      "mean" "p50" "p90" "p99" "max";
    List.iter (fun (_, h) -> Format.fprintf ppf "%a@." Histogram.pp_row h) hs
  end;
  let cs = List.filter (fun (_, c) -> Counter.value c > 0) (all_counters ()) in
  if cs <> [] then begin
    Format.fprintf ppf "%-26s %8s@." "counter" "value";
    List.iter
      (fun (name, c) -> Format.fprintf ppf "%-26s %8d@." name (Counter.value c))
      cs
  end
