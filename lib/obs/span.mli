(** Typed spans with parent links, causal edges, and per-owner cycle
    accounting on top of the flight-recorder event stream.

    A span is an interval of the cycle timeline attributed to a kind
    (syscall, IPC rendezvous, TLB fill, driver submit/complete, ...)
    and an owner (container / process / thread pointers).  Spans nest
    per CPU; {!begin_} emits {!Event.Span_begin} with the enclosing
    span as parent, {!end_} emits {!Event.Span_end} and charges the
    span's {e self} cycles (duration minus completed children) to
    [cycles/container/<p>], [cycles/process/<p>], [cycles/thread/<p>],
    and [cycles/kind/<name>] counter families.  Root spans feed
    [cycles/total], so per-container totals sum to [cycles/total]
    exactly.

    Causal edges ({!Event.Causal}) connect spans across CPUs and
    threads: IPC send→recv, IRQ→endpoint delivery, driver
    submit→completion, scheduler wakeups.  Side tables
    ({!note_blocked} &c.) let an instrumentation site recorded at one
    point in time be linked from a later one.

    Zero-overhead contract: every entry point loads the sink flag
    first; with {!Sink.Disabled} nothing allocates, no clock is read,
    and no cycle-model state is touched. *)

type kind =
  | Request        (** application-level request root *)
  | Ipc_rendezvous (** kernel IPC rendezvous (fast or slow path) *)
  | Ctx_switch     (** scheduler picked a new current thread *)
  | Mmu_fill       (** TLB miss serviced by a page-table walk *)
  | Drv_submit     (** driver queued work / rang a doorbell *)
  | Drv_complete   (** driver harvested a completion *)
  | Irq            (** interrupt fired and was routed *)
  | User           (** simulated user-mode think time *)
  | Lock_wait      (** big-kernel-lock wait *)
  | App of int     (** registered application kind (code 16-63) *)
  | Syscall of int (** one syscall, by [Atmo_spec.Syscall.number] *)

val code : kind -> int
(** One-byte kind code as stored in events (syscall [n] maps to
    [64 + n]). *)

val register_app : string -> kind
(** Intern an application span kind by name (codes 16-63; idempotent
    per name).  {!label} resolves it back. *)

val label : kind -> string

val label_of_code : int -> string
(** Name for a raw kind code, preferring registered application names
    over the generic decoder names. *)

val begin_ : ?ts:int -> ?container:int -> ?proc:int -> ?thread:int -> kind -> int
(** Open a span on the current CPU ({!Sink.current_cpu}) and return its
    id, or 0 when tracing is disabled.  Owner fields default to the
    enclosing span's owners.  [?ts] stamps an explicit cycle time;
    otherwise {!Sink.now} is used. *)

val end_ : ?ts:int -> int -> unit
(** Close a span by id (no-op for id 0 or when tracing is disabled).
    Children still open above it are recorded as leaks (see {!leaked})
    and unwound. *)

val pair : ?ts:int -> ?container:int -> kind -> int
(** A batched zero-duration span: begin and end at one timestamp,
    written as a single packed {!Event.Span_pair} record (half the
    ring cost; {!Sink.records} re-expands it, so consumers see a
    normal begin/end pair).  For instantaneous markers — driver
    submit/complete, context switches — whose frames never enclose
    other work; zero duration charges no cycles, so no stack frame is
    pushed.  Parent and owner default from the enclosing open span.
    Returns the span id for causal linking, or 0 when tracing is off
    or the span was masked/sampled out.

    Admission (filtering {e and} sampling) for the whole span layer is
    decided per span at {!begin_}/{!pair} under the [span_begin] tag,
    so spans are always recorded whole or skipped whole. *)

val current : unit -> int
(** Id of the innermost open span on the current CPU, or 0. *)

type edge_kind = Ipc | Irq_delivery | Drv | Wakeup

val edge : edge_kind -> src:int -> dst:int -> unit
(** Emit a causal edge between two spans; dropped if either id is 0. *)

(** {2 Causal side tables} *)

val note_blocked : thread:int -> span:int -> unit
(** Remember the span during which [thread] parked on an endpoint. *)

val take_blocked : thread:int -> int
(** Consume the parked span for [thread] (0 if none). *)

val note_irq_pending : device:int -> span:int -> unit
val take_irq_pending : device:int -> int
val note_submit : device:int -> tag:int -> span:int -> unit
val take_submit : device:int -> tag:int -> int

(** {2 Introspection} *)

val open_spans : unit -> (int * int * int) list
(** Open spans as [(cpu, kind code, id)], sorted — at quiescence this
    must be empty; the sanitizer's span-balance lint checks it. *)

val leaked : unit -> (int * int * int) list
(** Spans that were left open when an enclosing span ended, sorted. *)

val clear_leaked : unit -> unit

val reset : unit -> unit
(** Drop all open-span stacks, side tables, and leak records, and
    restart id allocation.  Call when (re)installing a sink. *)
