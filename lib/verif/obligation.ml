type result = {
  name : string;
  ok : bool;
  detail : string option;
  elapsed_s : float;
  cached : bool;
}

type t = {
  name : string;
  group : string;
  reads : string list option;
  run : unit -> (unit, string) Stdlib.result;
}

let make ?reads ~name ~group run = { name; group; reads; run }

(* Monotonic-ish clock: this OCaml's Unix lacks [clock_gettime], so
   clamp gettimeofday through a high-water mark — elapsed times can
   never go negative under a clock step, which is the property Table 2
   needs.  Domains race only on a float ref; a lost update merely
   lowers the water mark back toward real time. *)
let water = ref 0.

let now () =
  let t = Unix.gettimeofday () in
  if t > !water then water := t;
  !water

let discharge t =
  let t0 = now () in
  let outcome =
    try t.run ()
    with exn ->
      let bt = String.trim (Printexc.get_backtrace ()) in
      let msg = Printexc.to_string exn in
      Error (if bt = "" then msg else msg ^ "\n" ^ bt)
  in
  let elapsed_s = now () -. t0 in
  match outcome with
  | Ok () -> { name = t.name; ok = true; detail = None; elapsed_s; cached = false }
  | Error d -> { name = t.name; ok = false; detail = Some d; elapsed_s; cached = false }

let pp_result ppf (r : result) =
  Format.fprintf ppf "%-40s %s %8.3f ms%s%s" r.name
    (if r.ok then "ok  " else "FAIL")
    (r.elapsed_s *. 1000.)
    (if r.cached then "  [cached]" else "")
    (match r.detail with
    | None -> ""
    | Some d ->
      (* one-line report: first line of the detail (the violated
         clause); a captured backtrace stays in [detail] for verbose
         printers *)
      let first =
        match String.index_opt d '\n' with
        | None -> d
        | Some i -> String.sub d 0 i ^ " ..."
      in
      "  (" ^ first ^ ")")
