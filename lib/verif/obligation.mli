(** Proof obligations.

    One obligation corresponds to one verification condition of the
    paper's proof: an invariant that must hold of a state, or a spec
    relation that must hold of a transition.  Where Verus discharges
    these statically through Z3, this reproduction discharges them by
    executable checking over concrete and generated states; the
    obligation carries everything the runner needs to time and report
    the discharge. *)

type result = {
  name : string;
  ok : bool;
  detail : string option;
      (** first violated clause; on an exception, the message followed
          by the captured backtrace (one frame per line) *)
  elapsed_s : float;
  cached : bool;  (** verdict reused from a previous run (incremental) *)
}

type t = {
  name : string;
  group : string;  (** subsystem, e.g. "pt", "pm", "kernel" *)
  reads : string list option;
      (** map ids ({!Incremental.map_id}) whose contents the check
          depends on.  [None] = unannotated, always re-checked;
          [Some []] = pure / world-independent, never re-checked once
          discharged; [Some l] = re-checked when a map in [l] is dirty. *)
  run : unit -> (unit, string) Stdlib.result;
}

val make :
  ?reads:string list ->
  name:string ->
  group:string ->
  (unit -> (unit, string) Stdlib.result) ->
  t

val now : unit -> float
(** Monotonic-by-clamping clock (gettimeofday through a high-water
    mark): successive calls never decrease, so elapsed times cannot go
    negative under wall-clock steps.  [Unix.clock_gettime] is absent
    from this toolchain's Unix binding. *)

val discharge : t -> result
(** Run and time one obligation.  A raising obligation fails with the
    exception message plus its backtrace (arm
    [Printexc.record_backtrace] — the runner does). *)

val pp_result : Format.formatter -> result -> unit
