open Atmo_util
module Page_alloc = Atmo_pmem.Page_alloc
module Page_state = Atmo_pmem.Page_state
module Page_table = Atmo_pt.Page_table
module Perm_map = Atmo_pm.Perm_map
module Proc_mgr = Atmo_pm.Proc_mgr
module Process = Atmo_pm.Process
module Endpoint = Atmo_pm.Endpoint
module Pm_invariants = Atmo_pm.Pm_invariants
module Pm_invariants_rec = Atmo_pm.Pm_invariants_rec
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants

type annotation = {
  target : string;
  name : string;
  group : string;
  predicate : string;
  reads : string list;
  check : Kernel.t -> (unit, string) Stdlib.result;
}

let err fmt = Format.kasprintf (fun s -> Error s) fmt

(* Id shorthands for the annotation tables below. *)
let cntr = Incremental.pm_id "cntr_perms"
let proc = Incremental.pm_id "proc_perms"
let thrd = Incremental.pm_id "thrd_perms"
let edpt = Incremental.pm_id "edpt_perms"
let cntr_dom = Incremental.pm_dom_id "cntr_perms"
let proc_dom = Incremental.pm_dom_id "proc_perms"
let thrd_dom = Incremental.pm_dom_id "thrd_perms"
let edpt_dom = Incremental.pm_dom_id "edpt_perms"
let palloc = Incremental.alloc_id
let pt = Incremental.pt_id
let dev = Incremental.dev_id

(* ------------------------------------------------------------------ *)
(* New annotation-native checks                                        *)

(* Walk every page table in the system (process address spaces and
   device DMA windows) applying [f va entry] under a naming context. *)
let fold_tables (k : Kernel.t) f =
  let ( let* ) r g = match r with Ok () -> g () | Error _ as e -> e in
  let* () =
    Perm_map.fold
      (fun ptr (p : Process.t) acc ->
        let* () = acc in
        f (Printf.sprintf "process 0x%x" ptr) p.Process.pt)
      k.Kernel.pm.Proc_mgr.proc_perms (Ok ())
  in
  Imap.fold
    (fun device (d : Kernel.device_info) acc ->
      let* () = acc in
      f (Printf.sprintf "device %d io_pt" device) d.Kernel.io_pt)
    k.Kernel.devices (Ok ())

let mapped_frames_used (k : Kernel.t) =
  fold_tables k (fun who table ->
      Imap.fold
        (fun va (e : Page_table.entry) acc ->
          match acc with
          | Error _ -> acc
          | Ok () -> (
            match Page_alloc.state_of k.Kernel.alloc ~addr:e.Page_table.frame with
            | Some (Page_state.Mapped _) -> Ok ()
            | Some st ->
              err "%s: vpage 0x%x -> ppage 0x%x is %a, not mapped" who va
                e.Page_table.frame Page_state.pp_state st
            | None ->
              err "%s: vpage 0x%x -> ppage 0x%x outside the allocator" who va
                e.Page_table.frame))
        (Page_table.address_space table)
        (Ok ()))

let endpoints_live_containers (k : Kernel.t) =
  Perm_map.fold
    (fun ptr (e : Endpoint.t) acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if Perm_map.mem k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:e.Endpoint.owner_container
        then Ok ()
        else
          err "endpoint 0x%x owned by dead container 0x%x" ptr
            e.Endpoint.owner_container)
    k.Kernel.pm.Proc_mgr.edpt_perms (Ok ())

let pte_within_reservation (k : Kernel.t) =
  let alloc = k.Kernel.alloc in
  let page = Atmo_hw.Phys_mem.page_size in
  let nframes = Atmo_hw.Phys_mem.page_count (Page_alloc.mem alloc) in
  let first = nframes - Page_alloc.managed_frames alloc in
  let lo = first * page and hi = nframes * page in
  fold_tables k (fun who table ->
      List.fold_left
        (fun acc (va, (e : Page_table.entry)) ->
          match acc with
          | Error _ -> acc
          | Ok () ->
            let bytes = Page_state.bytes_per e.Page_table.size in
            if e.Page_table.frame >= lo && e.Page_table.frame + bytes <= hi then Ok ()
            else
              err "%s: PTE at 0x%x -> frame 0x%x(+%d) outside reservation [0x%x,0x%x)"
                who va e.Page_table.frame bytes lo hi)
        (Ok ())
        (Page_table.walk_concrete table))

(* ------------------------------------------------------------------ *)
(* Built-in annotations                                                *)

(* Each annotation attaches a dsolve-style refinement predicate to one
   state container (SNIPPETS.md, nyu-acsys/dsolve tests/pmap.ml writes
   page-map invariants the same way: a predicate over the store,
   quantified over its domain).  The [check] is the predicate's
   executable discharge; [reads] is its footprint in map ids, which is
   what makes the dirty-set verifier sound: a check may only be skipped
   if nothing it reads changed. *)
let pm_check f (k : Kernel.t) = f k.Kernel.pm

let builtins : annotation list =
  [
    (* --- container tree (cntr_perms) --- *)
    {
      target = cntr;
      name = "pm/containers_wf";
      group = "pm";
      predicate = "cntr :: (c:ptr, {v: quota v >= 0 && cpus v <= parent_cpus v}) Store.t";
      reads = [ cntr ];
      check = pm_check Pm_invariants.containers_wf;
    };
    {
      target = cntr;
      name = "pm/path_wf";
      group = "pm";
      predicate = "cntr :: (c:ptr, {v: path v = parent_path v ++ [c]}) Store.t";
      reads = [ cntr ];
      check = pm_check Pm_invariants.path_wf;
    };
    {
      target = cntr;
      name = "pm/parent_child_wf";
      group = "pm";
      predicate = "cntr :: (c:ptr, {v: forall ch in children v. parent ch = c}) Store.t";
      reads = [ cntr ];
      check = pm_check Pm_invariants.parent_child_wf;
    };
    {
      target = cntr;
      name = "pm/subtree_wf";
      group = "pm";
      predicate = "cntr :: (c:ptr, {v: subtree v = {c} U Union (subtree ch)}) Store.t";
      reads = [ cntr ];
      check = pm_check Pm_invariants.subtree_wf;
    };
    {
      target = proc;
      name = "pm/process_tree_wf";
      group = "pm";
      predicate =
        "proc :: (p:ptr, {v: owner v in dom cntr && forall t in threads v. owner_proc t = p}) Store.t";
      reads = [ cntr; proc; thrd ];
      check = pm_check Pm_invariants.process_tree_wf;
    };
    {
      target = thrd;
      name = "pm/scheduler_wf";
      group = "pm";
      predicate =
        "thrd :: (t:ptr, {v: state v = Runnable <=> t in run_queue} ) Store.t";
      reads = [ thrd; edpt ];
      check = pm_check Pm_invariants.scheduler_wf;
    };
    {
      target = edpt;
      name = "pm/endpoints_wf";
      group = "pm";
      predicate =
        "edpt :: (e:ptr, {v: refcount v = |slots pointing at e| && queued threads blocked on e}) Store.t";
      reads = [ thrd; edpt; cntr ];
      check = pm_check Pm_invariants.endpoints_wf;
    };
    {
      target = cntr;
      name = "pm/quota_wf";
      group = "pm";
      predicate = "cntr :: (c:ptr, {v: used v <= quota v && used v = Sum owned pages}) Store.t";
      reads = [ cntr; proc_dom; thrd_dom; edpt; pt ];
      check = pm_check Pm_invariants.quota_wf;
    };
    (* --- recursive restatements (ablation; same footprint) --- *)
    {
      target = cntr;
      name = "pm_rec/path_wf";
      group = "pm-rec";
      predicate = "cntr :: rec(c). path c = path (parent c) ++ [c]";
      reads = [ cntr ];
      check = pm_check Pm_invariants_rec.path_wf;
    };
    {
      target = cntr;
      name = "pm_rec/subtree_wf";
      group = "pm-rec";
      predicate = "cntr :: rec(c). subtree c = {c} U Union (subtree ch)";
      reads = [ cntr ];
      check = pm_check Pm_invariants_rec.subtree_wf;
    };
    {
      target = cntr;
      name = "pm_rec/acyclic";
      group = "pm-rec";
      predicate = "cntr :: rec(c). c not in subtree (children c)";
      reads = [ cntr ];
      check = pm_check Pm_invariants_rec.acyclic;
    };
    (* --- allocator (Page_state/Page_alloc) --- *)
    {
      target = palloc;
      name = "kernel/allocator_wf";
      group = "kernel";
      predicate =
        "alloc :: (f:frame, {v: free v <=> f on free_list (size v)} && aligned f (size v)) Store.t";
      reads = [ palloc ];
      check = Invariants.allocator_wf;
    };
    (* --- page tables --- *)
    {
      target = pt;
      name = "kernel/page_tables_wf";
      group = "kernel";
      predicate = "pt :: (va:addr, {v: walk cr3 va = ghost v}) Store.t, per process";
      reads = [ proc_dom; pt ];
      check = Invariants.page_tables_wf;
    };
    {
      target = pt;
      name = "kernel/closures_disjoint";
      group = "kernel";
      predicate = "closures :: {v: pairwise_disjoint (pages of every kernel object)}";
      reads = [ cntr_dom; proc_dom; thrd_dom; edpt_dom; pt; dev ];
      check = Invariants.closures_disjoint;
    };
    {
      target = palloc;
      name = "kernel/leak_freedom";
      group = "kernel";
      predicate = "alloc :: {v: allocated v = Union (closure of every kernel object)}";
      reads = [ cntr_dom; proc_dom; thrd_dom; edpt_dom; pt; palloc; dev ];
      check = Invariants.leak_freedom;
    };
    {
      target = pt;
      name = "kernel/mapped_consistent";
      group = "kernel";
      predicate =
        "alloc :: (f:frame, {v: refcount v = |{(space, va) : space va -> f}|}) Store.t";
      reads = [ proc_dom; pt; palloc; dev ];
      check = Invariants.mapped_consistent;
    };
    (* --- device / IRQ tables --- *)
    {
      target = dev;
      name = "kernel/devices_wf";
      group = "kernel";
      predicate =
        "dev :: (d:id, {v: owner v live && iommu_root v = cr3 (io_pt v) && external charge = |io pages|}) Store.t";
      reads = [ dev; proc_dom; cntr; edpt; pt ];
      check = Invariants.devices_wf;
    };
    {
      target = dev;
      name = "kernel/irq_backlog_wf";
      group = "kernel";
      predicate = "backlog :: (e:ptr, {v: v = Sum irq_pending over devices routed to e})";
      reads = [ dev ];
      check = Invariants.irq_backlog_wf;
    };
    (* --- annotation-native predicates (no hand-written catalog entry) --- *)
    {
      target = pt;
      name = "refine/mapped_frames_used";
      group = "refine";
      predicate = "pt :: (va:addr, {v: state (frame v) = Mapped n && n > 0}) Store.t";
      reads = [ proc_dom; pt; palloc; dev ];
      check = mapped_frames_used;
    };
    {
      target = edpt;
      name = "refine/endpoints_live_containers";
      group = "refine";
      predicate = "edpt :: (e:ptr, {v: owner_container v in dom cntr}) Store.t";
      reads = [ edpt; cntr_dom ];
      check = endpoints_live_containers;
    };
    {
      target = pt;
      name = "refine/pte_within_reservation";
      group = "refine";
      predicate = "pt :: (va:addr, {v: present v => lo <= frame v < hi}) Store.t";
      reads = [ proc_dom; pt; dev ];
      check = pte_within_reservation;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)

let registered : annotation list ref = ref []

let register a =
  if List.exists (fun b -> b.name = a.name) (builtins @ !registered) then
    invalid_arg ("Refine.register: duplicate annotation " ^ a.name);
  registered := !registered @ [ a ]

let annotations () = builtins @ !registered

let by_target () =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun a ->
      if not (Hashtbl.mem tbl a.target) then order := a.target :: !order;
      Hashtbl.replace tbl a.target
        (a :: Option.value ~default:[] (Hashtbl.find_opt tbl a.target)))
    (annotations ());
  List.rev_map (fun t -> (t, List.rev (Hashtbl.find tbl t))) !order

let obligation_of k a =
  Obligation.make ~reads:a.reads ~name:a.name ~group:a.group (fun () -> a.check k)

let obligations k = List.map (obligation_of k) (annotations ())

let reads_of ~name =
  List.find_map (fun a -> if a.name = name then Some a.reads else None) (annotations ())

let pp_annotation ppf a =
  Format.fprintf ppf "@[<v2>%s  [%s]@,%s@,reads: %s@]" a.name a.target a.predicate
    (String.concat ", " a.reads)
