(** Refinement annotations: obligations by annotation, not enumeration.

    The liquid-types idiom (dsolve's [pmap.ml]): each kernel state
    container — a {!Atmo_pm.Perm_map}, the page allocator, the page
    tables, the device table — carries refinement predicates written
    against the store ("every mapped vpage's ppage is marked used",
    "shared endpoints resolve to live containers", "PTE present ⇒
    frame within reservation").  Every annotation auto-generates one
    {!Obligation.t} whose [reads] footprint feeds the incremental
    dirty-set verifier, so a new map gets its obligations by adding an
    annotation — not by editing the catalog. *)

type annotation = {
  target : string;  (** annotated container's map id, e.g. ["pm/cntr_perms"] *)
  name : string;  (** generated obligation name *)
  group : string;
  predicate : string;  (** dsolve-style refinement predicate (documentation) *)
  reads : string list;  (** footprint in {!Incremental} map ids *)
  check : Atmo_core.Kernel.t -> (unit, string) Stdlib.result;
      (** executable discharge of the predicate *)
}

val builtins : annotation list
(** The kernel's shipped annotations: every [Pm_invariants] (flat and
    recursive), allocator, page-table, device and IRQ invariant, plus
    three annotation-native predicates ([refine/*]) that never had a
    hand-written catalog entry. *)

val register : annotation -> unit
(** Add an annotation for a new map.  Raises [Invalid_argument] on a
    duplicate name. *)

val annotations : unit -> annotation list
(** Builtins followed by registrations. *)

val by_target : unit -> (string * annotation list) list
(** Stable grouping by annotated container. *)

val obligations : Atmo_core.Kernel.t -> Obligation.t list
(** One obligation per annotation, bound to [k], each tagged with its
    read set.  Replaces the hand-enumerated kernel-world entries of
    {!Catalog}. *)

val reads_of : name:string -> string list option
(** Read set of the named annotation, if any. *)

val pp_annotation : Format.formatter -> annotation -> unit
