(** Obligation discharge runner — the reproduction's "verifier".

    Discharges a set of obligations sequentially or across several OCaml
    domains (Verus parallelises verification across threads; Table 2 and
    Figure 2 report 1-thread vs 8-thread times).  Results carry
    per-obligation timing so the harness can reproduce the paper's
    per-function verification-time distribution.

    With [?incremental] the runner consults a dirty-set context
    (see {!Incremental}): an obligation annotated with the maps it
    reads is skipped — its cached verdict spliced into the report —
    when none of those maps changed since the verdict was produced. *)

type report = {
  results : Obligation.result list;
  wall_s : float;
  threads : int;
  rechecked : int;  (** obligations actually discharged this run *)
  reused : int;  (** cached verdicts spliced in (0 for full runs) *)
}

type incremental = {
  is_dirty : string -> bool;  (** map id mutated since verdict cached? *)
  cached : string -> Obligation.result option;  (** by obligation name *)
}

val run : ?threads:int -> ?incremental:incremental -> Obligation.t list -> report
(** [threads] defaults to 1.  With [threads > 1] obligations are
    distributed over that many domains.  Arms
    [Printexc.record_backtrace] so a raising obligation reports where
    it failed.  Raises [Invalid_argument] if two obligations share a
    name — duplicates would shadow each other in grouped reports and
    in the incremental verdict cache. *)

val duplicate_name : Obligation.t list -> string option
(** First name appearing twice, if any. *)

val all_ok : report -> bool
val failures : report -> Obligation.result list
val total_check_time : report -> float
(** Sum of per-obligation times (CPU-style total, vs [wall_s]). *)

val by_group : Obligation.t list -> (string * Obligation.t list) list
(** Stable grouping by the obligation's [group] field. *)

val pp : Format.formatter -> report -> unit
