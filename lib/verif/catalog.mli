(** The obligation catalog: what "verifying Atmosphere" means here.

    Builds populated system states and the complete list of obligations
    the runner discharges over them — the reproduction's analogue of
    running Verus over the kernel.  Three suites mirror the rows of
    Table 2:

    - the Atmosphere page table (flat checkers, {!Atmo_pt.Pt_refine});
    - the same page table with the recursive NrOS-style checkers
      ({!Atmo_pt.Nros_pt}) — the §6.2 ablation;
    - the full kernel: every subsystem invariant on a populated world
      plus one transition-spec obligation per system call (replaying a
      scripted workload under {!Refine_harness}), which stands in for
      the per-function verification conditions of Figure 2. *)

val build_pt : mappings:int -> Atmo_pt.Page_table.t
(** A page table populated with [mappings] 4 KiB mappings plus a few
    2 MiB mappings (its allocator and memory stay reachable from it). *)

val pt_obligations_flat : Atmo_pt.Page_table.t -> Obligation.t list
val pt_obligations_recursive : Atmo_pt.Page_table.t -> Obligation.t list

val build_world : scale:int -> (Atmo_core.Kernel.t * int, string) result
(** A kernel populated through system calls: [scale] containers, each
    with processes, threads, endpoints, mappings and cross-container
    endpoint shares.  Returns the kernel and the init thread. *)

val kernel_obligations : Atmo_core.Kernel.t -> Obligation.t list
(** Every state invariant of every subsystem on the given kernel —
    generated from the refinement annotations ({!Refine.obligations}),
    so each carries the read-set footprint the incremental runner
    uses. *)

val build_tree : depth:int -> fanout:int -> (Atmo_core.Kernel.t, string) result
(** A kernel whose container tree is a chain of [depth] containers, each
    chain node also carrying [fanout] leaf children — the workload for
    the container-tree half of the flat-vs-recursive ablation. *)

val pm_tree_obligations_flat : Atmo_core.Kernel.t -> Obligation.t list
(** The flat ghost-field tree invariants (path/subtree/parent-child). *)

val pm_tree_obligations_recursive : Atmo_core.Kernel.t -> Obligation.t list
(** The same facts re-derived by structural recursion
    ({!Atmo_pm.Pm_invariants_rec}). *)

val syscall_obligations : scale:int -> Obligation.t list
(** One obligation per system call: replay a fresh scripted + random
    workload checking that call's transitions against its top-level
    specification.  Obligation names are [spec/<syscall>], matching the
    per-function presentation of Figure 2. *)

val suite_for : scale:int -> Atmo_core.Kernel.t -> Obligation.t list
(** The full suite bound to a caller-supplied kernel, for incremental
    verification: keep the kernel, apply transitions, re-run. *)

val full_suite : scale:int -> (Obligation.t list, string) result
(** Page-table, kernel-invariant and per-syscall obligations together —
    the "Atmosphere" row of Table 2. *)
