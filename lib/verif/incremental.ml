module Perm_map = Atmo_pm.Perm_map
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Kernel = Atmo_core.Kernel

(* ------------------------------------------------------------------ *)
(* Map ids                                                             *)

let pm_id name = "pm/" ^ name
let pm_dom_id name = "pm/" ^ name ^ "/dom"
let alloc_id = "pmem/alloc"
let pt_id = "pt"
let dev_id = "kernel/devices"

(* The permission maps the kernel actually creates (Proc_mgr); the
   audit baselines are snapshotted for exactly these. *)
let pm_names = [ "cntr_perms"; "proc_perms"; "thrd_perms"; "edpt_perms" ]

(* Base ids with an always-on intrinsic counter to audit against. *)
let audited_ids =
  List.map pm_id pm_names @ [ alloc_id; pt_id; dev_id ]

let intrinsic_of id =
  if id = alloc_id then Page_alloc.mutation_count ()
  else if id = pt_id then Page_table.mutation_count ()
  else if id = dev_id then Kernel.device_mutation_count ()
  else
    (* "pm/<name>" *)
    Perm_map.mutation_count ~name:(String.sub id 3 (String.length id - 3))

(* ------------------------------------------------------------------ *)
(* The tracker                                                         *)

type counter = { mutable seen : int; mutable acked : int }

type t = {
  table : (string, counter) Hashtbl.t;  (* map id -> hook-observed counts *)
  baselines : (string, int) Hashtbl.t;  (* audited id -> intrinsic at sync *)
  cache : (string, Obligation.result) Hashtbl.t;  (* obligation name -> verdict *)
  mutable suspended : bool;  (* discharge in progress: ignore scratch worlds *)
  mutable planted : bool;  (* stale-proof plant: drop marks on the floor *)
}

let active : t option ref = ref None
let hook_key = "verif-incremental"

let counter_of t id =
  match Hashtbl.find_opt t.table id with
  | Some c -> c
  | None ->
    let c = { seen = 0; acked = 0 } in
    Hashtbl.add t.table id c;
    c

let bump t id =
  let c = counter_of t id in
  c.seen <- c.seen + 1

let mark t id = if not (t.suspended || t.planted) then bump t id

(* Invariant audited by atmo_san's stale-proof lint: for every audited
   id, intrinsic_now = baseline + seen.  [resync] restores it after a
   suspended section (obligation discharge builds scratch worlds whose
   mutations bump intrinsic counters but must not dirty the tracked
   kernel's maps). *)
let resync t =
  List.iter
    (fun id -> Hashtbl.replace t.baselines id (intrinsic_of id - (counter_of t id).seen))
    audited_ids

let arm () =
  let t =
    {
      table = Hashtbl.create 16;
      baselines = Hashtbl.create 8;
      cache = Hashtbl.create 64;
      suspended = false;
      planted = false;
    }
  in
  resync t;
  Perm_map.add_mutation_hook ~key:hook_key (fun ~name ~op ~ptr:_ ->
      mark t (pm_id name);
      if op <> "update" then mark t (pm_dom_id name));
  Page_alloc.add_event_hook ~key:hook_key (fun _ev -> mark t alloc_id);
  Page_table.add_mutation_hook ~key:hook_key (fun ~op:_ -> mark t pt_id);
  Kernel.add_device_hook ~key:hook_key (fun ~op:_ -> mark t dev_id);
  active := Some t

let disarm () =
  Perm_map.remove_mutation_hook ~key:hook_key;
  Page_alloc.remove_event_hook ~key:hook_key;
  Page_table.remove_mutation_hook ~key:hook_key;
  Kernel.remove_device_hook ~key:hook_key;
  active := None

let is_armed () = !active <> None

let set_miss_plant on =
  match !active with Some t -> t.planted <- on | None -> ()

let suspend f =
  match !active with
  | None -> f ()
  | Some t ->
    t.suspended <- true;
    Fun.protect
      ~finally:(fun () ->
        t.suspended <- false;
        resync t)
      f

let is_dirty_in t id =
  match Hashtbl.find_opt t.table id with
  | None -> false
  | Some c -> c.seen > c.acked

let is_dirty id = match !active with None -> true | Some t -> is_dirty_in t id

let dirty_ids () =
  match !active with
  | None -> []
  | Some t ->
    Hashtbl.fold (fun id c acc -> if c.seen > c.acked then id :: acc else acc) t.table []
    |> List.sort compare

(* Audit for the stale-proof lint: ids whose intrinsic mutation count
   moved past what the tracker observed.  [(id, expected, observed)]
   where expected = intrinsic_now - baseline. *)
let audit () =
  match !active with
  | None -> []
  | Some t ->
    List.filter_map
      (fun id ->
        match Hashtbl.find_opt t.baselines id with
        | None -> None
        | Some base ->
          let expected = intrinsic_of id - base in
          let observed = (counter_of t id).seen in
          if expected <> observed then Some (id, expected, observed) else None)
      audited_ids

let cached_verdicts () =
  match !active with None -> 0 | Some t -> Hashtbl.length t.cache

let run ?(threads = 1) obls =
  match !active with
  | None -> Runner.run ~threads obls
  | Some t ->
    let ctx =
      { Runner.is_dirty = is_dirty_in t; cached = Hashtbl.find_opt t.cache }
    in
    let report = suspend (fun () -> Runner.run ~threads ~incremental:ctx obls) in
    List.iter
      (fun (r : Obligation.result) ->
        Hashtbl.replace t.cache r.Obligation.name { r with Obligation.cached = false })
      report.Runner.results;
    Hashtbl.iter (fun _ c -> c.acked <- c.seen) t.table;
    report
