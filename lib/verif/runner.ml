type report = {
  results : Obligation.result list;
  wall_s : float;
  threads : int;
  rechecked : int;
  reused : int;
}

type incremental = {
  is_dirty : string -> bool;
  cached : string -> Obligation.result option;
}

(* Duplicate names silently shadow each other in grouped reports and in
   the incremental verdict cache, so a suite with duplicates is a bug
   in the catalog, not a property of the kernel. *)
let duplicate_name obls =
  let seen = Hashtbl.create (max 8 (List.length obls)) in
  List.find_map
    (fun (o : Obligation.t) ->
      if Hashtbl.mem seen o.Obligation.name then Some o.Obligation.name
      else (Hashtbl.add seen o.Obligation.name (); None))
    obls

let check_unique obls =
  match duplicate_name obls with
  | Some n -> invalid_arg ("Runner.run: duplicate obligation name " ^ n)
  | None -> ()

let run_sequential obls = List.map Obligation.discharge obls

(* Static round-robin partition over domains: obligations are
   independent, so any split is sound; round-robin balances the heavy
   kernel-wide checks across domains. *)
let run_parallel ~threads obls =
  let buckets = Array.make threads [] in
  List.iteri (fun i o -> buckets.(i mod threads) <- o :: buckets.(i mod threads)) obls;
  let domains =
    Array.map (fun bucket -> Domain.spawn (fun () -> run_sequential (List.rev bucket))) buckets
  in
  Array.to_list domains |> List.concat_map Domain.join

(* An obligation may be skipped only when it is annotated, has a cached
   verdict, and none of its declared reads is dirty.  Unannotated
   obligations ([reads = None]) are always re-discharged. *)
let reusable incr (o : Obligation.t) =
  match o.Obligation.reads with
  | None -> None
  | Some reads -> (
    match incr.cached o.Obligation.name with
    | None -> None
    | Some r -> if List.exists incr.is_dirty reads then None else Some r)

let run ?(threads = 1) ?incremental obls =
  Printexc.record_backtrace true;
  check_unique obls;
  let t0 = Obligation.now () in
  let plan =
    List.map
      (fun o ->
        match incremental with
        | None -> Either.Left o
        | Some incr -> (
          match reusable incr o with
          | Some r -> Either.Right { r with Obligation.cached = true }
          | None -> Either.Left o))
      obls
  in
  let to_run = List.filter_map (function Either.Left o -> Some o | _ -> None) plan in
  let fresh =
    if threads <= 1 then run_sequential to_run else run_parallel ~threads to_run
  in
  (* splice fresh results back into suite order *)
  let fresh = ref fresh in
  let results =
    List.map
      (function
        | Either.Right r -> r
        | Either.Left _ -> (
          match !fresh with
          | r :: rest ->
            fresh := rest;
            r
          | [] -> assert false))
      plan
  in
  let rechecked = List.length to_run in
  { results;
    wall_s = Obligation.now () -. t0;
    threads;
    rechecked;
    reused = List.length results - rechecked }

let all_ok r = List.for_all (fun (x : Obligation.result) -> x.Obligation.ok) r.results
let failures r = List.filter (fun (x : Obligation.result) -> not x.Obligation.ok) r.results

let total_check_time r =
  List.fold_left (fun acc (x : Obligation.result) -> acc +. x.Obligation.elapsed_s) 0. r.results

let by_group obls =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (o : Obligation.t) ->
      if not (Hashtbl.mem tbl o.Obligation.group) then order := o.Obligation.group :: !order;
      Hashtbl.replace tbl o.Obligation.group
        (o :: Option.value ~default:[] (Hashtbl.find_opt tbl o.Obligation.group)))
    obls;
  List.rev_map (fun g -> (g, List.rev (Hashtbl.find tbl g))) !order

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%d obligations on %d thread(s), wall %.3f s, check %.3f s%s@,"
    (List.length r.results) r.threads r.wall_s (total_check_time r)
    (if r.reused > 0 then Printf.sprintf " (%d rechecked, %d reused)" r.rechecked r.reused
     else "");
  List.iter (fun x -> Format.fprintf ppf "%a@," Obligation.pp_result x) r.results;
  Format.fprintf ppf "@]"
