(** Incremental obligation discharge: per-transition dirty sets.

    Verus re-verifies only the functions whose dependencies changed;
    this layer gives the executable verifier the same locality.  A
    process-global {e dirty tracker} subscribes to the mutation hooks of
    every annotated state container — {!Atmo_pm.Perm_map} (per-map),
    {!Atmo_pmem.Page_alloc}, {!Atmo_pt.Page_table} and the kernel
    device table — and records, per {e map id}, how many mutations it
    has observed ([seen]) versus how many had been observed when each
    map's obligations were last discharged ([acked]).  A map is dirty
    iff [seen > acked]; {!run} re-discharges only obligations whose
    {!Obligation.t.reads} intersect the dirty set and splices cached
    verdicts for the rest, acking everything on completion.

    {b Map ids.}  ["pm/<name>"] marks any mutation of the permission
    map [<name>]; ["pm/<name>/dom"] marks only domain changes
    (alloc/consume — functional [update]s leave it clean), so
    domain-only readers such as the closure-disjointness check skip
    value updates.  ["pmem/alloc"], ["pt"] and ["kernel/devices"] cover
    the allocator, every page table, and the device/IRQ tables.

    {b Auditability.}  Each hooked layer also maintains an always-on
    intrinsic mutation counter.  The tracker snapshots baselines at
    {!arm} and keeps [intrinsic = baseline + seen] as an invariant
    (re-established by {!suspend}, which obligation discharge uses so
    scratch-world mutations don't dirty the tracked kernel).  A
    mutation observed by a layer but never by the tracker breaks the
    equation — atmo_san's [stale-proof] lint reports exactly that via
    {!audit}. *)

val pm_id : string -> string  (** ["pm/<name>"] *)

val pm_dom_id : string -> string  (** ["pm/<name>/dom"] *)

val alloc_id : string
val pt_id : string
val dev_id : string

val arm : unit -> unit
(** Install the tracker (fresh dirty sets, empty verdict cache,
    baselines snapshotted now).  Replaces any previous tracker. *)

val disarm : unit -> unit
val is_armed : unit -> bool

val suspend : (unit -> 'a) -> 'a
(** Run [f] with dirty marking off, then resync audit baselines so the
    mutations [f] performed are neither dirtying nor flagged stale. *)

val set_miss_plant : bool -> unit
(** Fault injection for the [stale-proof] lint: while on, the tracker
    drops marks on the floor (no dirty marking, no [seen] bump) while
    the layers' intrinsic counters keep advancing — the signature of a
    state container mutated behind the verifier's back. *)

val is_dirty : string -> bool
(** [true] when the id has unacked mutations; [true] for every id when
    no tracker is armed (everything must be re-checked). *)

val dirty_ids : unit -> string list

val audit : unit -> (string * int * int) list
(** [(id, expected, observed)] for every audited id where the intrinsic
    mutation count disagrees with what the tracker observed;
    empty when nothing is armed or nothing was missed. *)

val cached_verdicts : unit -> int

val run : ?threads:int -> Obligation.t list -> Runner.report
(** Incremental discharge against the armed tracker: re-check
    obligations whose read set intersects the dirty set (or that are
    unannotated / not yet cached), splice cached verdicts for the rest,
    then ack all dirty marks and refresh the cache.  Falls back to a
    plain full {!Runner.run} when no tracker is armed. *)
