open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table
module Pt_refine = Atmo_pt.Pt_refine
module Nros_pt = Atmo_pt.Nros_pt
module Pm_invariants = Atmo_pm.Pm_invariants
module Pm_invariants_rec = Atmo_pm.Pm_invariants_rec
module Kernel = Atmo_core.Kernel
module Invariants = Atmo_core.Invariants
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module Proc_mgr = Atmo_pm.Proc_mgr

(* ------------------------------------------------------------------ *)
(* Page-table worlds                                                   *)

let build_pt ~mappings =
  let mem = Phys_mem.create ~page_count:(mappings + 4096) in
  let alloc = Page_alloc.create mem ~reserved_frames:0 in
  let pt =
    match Page_table.create mem alloc with
    | Ok pt -> pt
    | Error _ -> invalid_arg "Catalog.build_pt: create failed"
  in
  (* spread 4 KiB mappings over several L4 subtrees so the hierarchical
     checker's per-subtree re-derivation cost is visible, as it would be
     on a real multi-region address space *)
  for i = 0 to mappings - 1 do
    let va =
      ((i / 512) lsl 39) lor (0x4000_0000 + ((i mod 512) * 4096))
    in
    match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.User with
    | Some frame ->
      (match Page_table.map_4k pt ~vaddr:va ~frame ~perm:Pte.perm_rw with
       | Ok () -> ()
       | Error _ -> ignore (Page_alloc.dec_ref alloc ~addr:frame))
    | None -> ()
  done;
  (* a couple of superpage mappings exercise the huge-leaf clauses *)
  (match Page_alloc.alloc_2m alloc ~purpose:Page_alloc.User with
   | Some big ->
     ignore (Page_table.map_2m pt ~vaddr:0x8000_0000 ~frame:big ~perm:Pte.perm_ro)
   | None -> ());
  pt

(* Standalone page-table worlds mutate only through the table itself,
   so the whole suite reads exactly the "pt" map id. *)
let pt_obligations_flat pt =
  List.map
    (fun (name, check) ->
      Obligation.make ~reads:[ Incremental.pt_id ] ~name ~group:"pt-flat" (fun () ->
          check pt))
    Pt_refine.obligations

let pt_obligations_recursive pt =
  List.map
    (fun (name, check) ->
      Obligation.make ~reads:[ Incremental.pt_id ] ~name ~group:"pt-rec" (fun () ->
          check pt))
    Nros_pt.obligations

(* ------------------------------------------------------------------ *)
(* Kernel worlds                                                       *)

let errf fmt = Format.kasprintf (fun s -> Error s) fmt

let build_world ~scale =
  let boot =
    {
      Kernel.frames = 8192;
      reserved_frames = 16;
      root_quota = 8000;
      cpus = Iset.of_range ~lo:0 ~hi:8;
    }
  in
  match Kernel.boot boot with
  | Error e -> errf "boot: %a" Errno.pp e
  | Ok (k, init) ->
    let failed = ref None in
    let note what r =
      match r with
      | Syscall.Rerr e when !failed = None ->
        failed := Some (Format.asprintf "%s: %a" what Errno.pp e)
      | _ -> ()
    in
    for c = 0 to scale - 1 do
      match Kernel.step k ~thread:init (Syscall.New_container { quota = 96; cpus = Iset.empty }) with
      | Syscall.Rptr cntr ->
        (* two processes with threads, endpoints and mappings each *)
        for _p = 0 to 1 do
          match Proc_mgr.new_process k.Kernel.pm ~container:cntr ~parent:None with
          | Error e -> note "new_process" (Syscall.Rerr e)
          | Ok proc ->
            (match Proc_mgr.new_thread k.Kernel.pm ~proc with
             | Error e -> note "new_thread" (Syscall.Rerr e)
             | Ok th ->
               note "endpoint" (Kernel.step k ~thread:th (Syscall.New_endpoint { slot = 0 }));
               note "mmap"
                 (Kernel.step k ~thread:th
                    (Syscall.Mmap
                       {
                         va = 0x4000_0000 + (c * 0x10_0000);
                         count = 8;
                         size = Page_state.S4k;
                         perm = Pte.perm_rw;
                       })))
        done
      | r -> note "new_container" r
    done;
    (* some IPC traffic so queues and message buffers are populated: a
       helper thread blocks sending on init's endpoint (init itself must
       stay runnable — it is the harness's syscall driver) *)
    (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
     | Syscall.Rptr ep ->
       (match Kernel.step k ~thread:init Syscall.New_thread with
        | Syscall.Rptr helper ->
          Atmo_pm.Perm_map.update k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:helper
            (fun th -> Atmo_pm.Thread.set_slot th 0 (Some ep));
          Atmo_pm.Perm_map.update k.Kernel.pm.Proc_mgr.edpt_perms ~ptr:ep (fun e ->
              { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 });
          ignore
            (Kernel.step k ~thread:helper
               (Syscall.Send { slot = 0; msg = Message.scalars_only [ 1 ] }))
        | r -> note "helper thread" r)
     | r -> note "init endpoint" r);
    (* a live device with an open DMA window, so IOMMU invariants and
       the io_map/io_unmap specs are exercised on every world *)
    note "init mmap"
      (Kernel.step k ~thread:init
         (Syscall.Mmap
            { va = 0x5000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
    note "assign device" (Kernel.step k ~thread:init (Syscall.Assign_device { device = 0 }));
    note "io_map"
      (Kernel.step k ~thread:init
         (Syscall.Io_map { device = 0; iova = 0x9000_0000; va = 0x5000_0000 }));
    note "register_irq"
      (Kernel.step k ~thread:init (Syscall.Register_irq { device = 0; slot = 0 }));
    note "irq_fire" (Kernel.step k ~thread:init (Syscall.Irq_fire { device = 0 }));
    (match !failed with Some msg -> Error msg | None -> Ok (k, init))

(* Kernel-world obligations are generated from the refinement
   annotations ({!Refine.builtins}) rather than hand-enumerated here:
   one obligation per annotated predicate, each carrying the read-set
   footprint the incremental runner needs.  The hand-written lists in
   [Invariants]/[Pm_invariants] remain the checks themselves; this
   module no longer decides which of them exist.  (The aggregate
   [kernel/pm_wf] entry is gone — it duplicated every [pm/*] obligation
   verbatim and would shadow their per-name timing.) *)
let kernel_obligations k = Refine.obligations k

(* ------------------------------------------------------------------ *)
(* Container-tree worlds (ablation)                                    *)

let build_tree ~depth ~fanout =
  let boot =
    {
      Kernel.frames = 16384;
      reserved_frames = 16;
      root_quota = 16000;
      cpus = Iset.of_range ~lo:0 ~hi:8;
    }
  in
  match Kernel.boot boot with
  | Error e -> errf "boot: %a" Errno.pp e
  | Ok (k, _init) ->
    let pm = k.Kernel.pm in
    let rec chain parent quota d =
      if d >= depth || quota < 4 + fanout then Ok ()
      else
        match Proc_mgr.new_container pm ~parent ~quota:(quota - 2) ~cpus:Iset.empty with
        | Error e -> errf "chain at depth %d: %a" d Errno.pp e
        | Ok node ->
          let rec leaves i =
            if i >= fanout then Ok ()
            else
              match Proc_mgr.new_container pm ~parent:node ~quota:1 ~cpus:Iset.empty with
              | Error e -> errf "leaf: %a" Errno.pp e
              | Ok _ -> leaves (i + 1)
          in
          (match leaves 0 with
           | Error _ as e -> e
           | Ok () -> chain node (quota - 2 - (2 * fanout)) (d + 1))
    in
    (match chain pm.Proc_mgr.root_container 15000 0 with
     | Error _ as e -> e
     | Ok () -> Ok k)

let tree_flat_checks =
  [
    ("pm/path_wf", Pm_invariants.path_wf);
    ("pm/subtree_wf", Pm_invariants.subtree_wf);
    ("pm/parent_child_wf", Pm_invariants.parent_child_wf);
  ]

let pm_tree_obligations_flat k =
  List.map
    (fun (name, check) ->
      Obligation.make ~name ~group:"pm-tree-flat" (fun () -> check k.Kernel.pm))
    tree_flat_checks

let pm_tree_obligations_recursive k =
  List.map
    (fun (name, check) ->
      Obligation.make ~name ~group:"pm-tree-rec" (fun () -> check k.Kernel.pm))
    Pm_invariants_rec.obligations

(* ------------------------------------------------------------------ *)
(* Per-syscall transition obligations                                  *)

(* For each system call, a fresh world is driven through transitions of
   mostly that call (interleaved with setup calls), each checked against
   the top-level specification.  One obligation per call = one bar of
   Figure 2. *)
let syscall_kinds =
  [
    ("mmap", 0); ("munmap", 1); ("mprotect", 2); ("new_container", 3);
    ("new_process", 4); ("new_thread", 5); ("new_endpoint", 6);
    ("close_endpoint", 7); ("send", 8); ("recv", 9); ("send_nb", 10);
    ("recv_nb", 11); ("recv_reject", 12); ("yield", 13);
    ("terminate_container", 14); ("terminate_process", 15); ("assign_device", 16);
    ("io_map", 17); ("io_unmap", 18); ("register_irq", 19); ("irq_fire", 20);
  ]

let call_of_kind rng kind k ~thread:_ =
  let open Syscall in
  let slot = Random.State.int rng Atmo_pm.Kconfig.max_endpoint_slots in
  let va = 0x4000_0000 + (Random.State.int rng 64 * 4096) in
  match kind with
  | 0 -> Mmap { va; count = 1 + Random.State.int rng 4; size = Page_state.S4k; perm = Pte.perm_rw }
  | 1 -> Munmap { va; count = 1 + Random.State.int rng 2; size = Page_state.S4k }
  | 2 -> Mprotect { va; perm = Pte.perm_ro }
  | 3 -> New_container { quota = 8 + Random.State.int rng 16; cpus = Iset.empty }
  | 4 -> New_process
  | 5 -> New_thread
  | 6 -> New_endpoint { slot }
  | 7 -> Close_endpoint { slot }
  | 8 -> Send { slot; msg = Message.scalars_only [ Random.State.int rng 100 ] }
  | 9 -> Recv { slot }
  | 10 -> Send_nb { slot; msg = Message.scalars_only [ 7 ] }
  | 11 -> Recv_nb { slot }
  | 12 -> Recv_reject { slot }
  | 13 -> Yield
  | 14 -> Terminate_container { container = Refine_harness.random_ptr rng k }
  | 15 -> Terminate_process { proc = Refine_harness.random_ptr rng k }
  | 16 -> Assign_device { device = Random.State.int rng 8 }
  | 17 ->
    (* device 0 with source 0x5000_0000 is the world's live window, so
       success paths are exercised alongside the error paths *)
    Io_map
      {
        device = Random.State.int rng 2;
        iova = 0x9000_0000 + (Random.State.int rng 8 * 4096);
        va = (if Random.State.bool rng then 0x5000_0000 else va);
      }
  | 18 ->
    Io_unmap
      { device = Random.State.int rng 2; iova = 0x9000_0000 + (Random.State.int rng 8 * 4096) }
  | 19 -> Register_irq { device = Random.State.int rng 2; slot = Random.State.int rng 4 }
  | _ -> Irq_fire { device = Random.State.int rng 3 }

(* Spec obligations build a FRESH scratch world per discharge, so they
   read nothing of the tracked kernel: [reads = Some []] means a cached
   verdict stays valid across transitions of the live world.  (Their
   own mutations are kept out of the dirty set by [Incremental.suspend]
   around discharge.) *)
let syscall_obligation ~scale (name, kind) =
  Obligation.make ~reads:[] ~name:("spec/" ^ name) ~group:"spec" (fun () ->
      match build_world ~scale with
      | Error msg -> Error msg
      | Ok (k, _) ->
        let rng = Random.State.make [| kind + 100 |] in
        let steps = 40 in
        let rec go i =
          if i >= steps then Ok ()
          else
            match Refine_harness.random_thread rng k with
            | None -> Ok ()
            | Some thread ->
              (* two thirds targeted calls, one third background noise *)
              let call =
                if Random.State.int rng 3 < 2 then call_of_kind rng kind k ~thread
                else Refine_harness.random_call rng k ~thread
              in
              let o = Refine_harness.step_checked k ~thread call in
              (match (o.Refine_harness.spec, o.Refine_harness.wf) with
               | Ok (), Ok () -> go (i + 1)
               | Error msg, _ | _, Error msg -> Error msg)
        in
        go 0)

let syscall_obligations ~scale = List.map (syscall_obligation ~scale) syscall_kinds

(* The suite over a caller-supplied kernel: this is what the
   incremental verifier tracks — the kernel must outlive the suite so
   transitions can be applied between runs. *)
let suite_for ~scale k =
  let pt = build_pt ~mappings:(scale * 64) in
  pt_obligations_flat pt @ kernel_obligations k @ syscall_obligations ~scale

let full_suite ~scale =
  match build_world ~scale with
  | Error msg -> Error msg
  | Ok (k, _) -> Ok (suite_for ~scale k)
