(** Minimal JSON reader/writer for the bench pipeline.

    [bench report] merges the machine-readable [BENCH_*.json] files this
    repo's benchmarks write into [BENCH_summary.json] and compares runs;
    the container's toolchain is frozen, so the benches cannot depend on
    an external JSON library.  The reader covers the JSON this repo
    actually produces (objects, arrays, strings, numbers, booleans,
    null); [\uXXXX] escapes decode to ['?']. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** Raises {!Parse_error}. *)

val of_string : string -> (t, string) result
val of_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects. *)

val path : string list -> t -> t option
(** Nested lookup: [path ["a"; "b"] v] is [v.a.b]. *)

val to_float : t option -> float option
(** Numbers pass through; booleans coerce to 0/1 (handy for floors). *)

val to_bool : t option -> bool option
val to_string : t option -> string option

val to_string_pretty : t -> string
(** Deterministic two-space-indented rendering, trailing newline. *)

val to_file : string -> t -> unit
