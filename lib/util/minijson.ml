(* Minimal JSON reader/writer for the bench pipeline: BENCH_*.json files
   are written by this repo, so the parser only has to cover the JSON
   actually produced (objects, arrays, strings without exotic escapes,
   numbers, booleans, null).  No external dependency — the toolchain is
   frozen. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | Some d -> fail "expected %C at offset %d, found %C" c st.pos d
  | None -> fail "expected %C, found end of input" c

let lit st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "bad literal at offset %d" st.pos

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail "unterminated string"
    else
      match st.s.[st.pos] with
      | '"' -> st.pos <- st.pos + 1
      | '\\' ->
        if st.pos + 1 >= String.length st.s then fail "dangling escape";
        (match st.s.[st.pos + 1] with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'r' -> Buffer.add_char b '\r'
         | 'u' ->
           (* the bench files never emit \u; decode as replacement *)
           Buffer.add_char b '?'
         | c -> fail "unsupported escape \\%c" c);
        st.pos <- st.pos + (if st.s.[st.pos + 1] = 'u' then 6 else 2);
        go ()
      | c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.s && is_num st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let tok = String.sub st.s start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail "bad number %S at offset %d" tok start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          members ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((key, v) :: acc)
        | _ -> fail "expected ',' or '}' at offset %d" st.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          elements (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at offset %d" st.pos
      in
      Arr (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> lit st "true" (Bool true)
  | Some 'f' -> lit st "false" (Bool false)
  | Some 'n' -> lit st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail "trailing garbage at offset %d" st.pos;
  v

let of_string s = try Ok (parse s) with Parse_error m -> Error m

let of_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error m -> Error m
  | s -> of_string s

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let rec path keys v =
  match keys with
  | [] -> Some v
  | k :: rest -> ( match member k v with Some v' -> path rest v' | None -> None)

let to_float = function
  | Some (Num f) -> Some f
  | Some (Bool b) -> Some (if b then 1. else 0.)
  | _ -> None

let to_bool = function Some (Bool b) -> Some b | _ -> None
let to_string = function Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let num_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    Printf.sprintf "%g" f

let rec write buf indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> Buffer.add_string buf (num_repr f)
  | Str s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (escape s))
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr vs ->
    Buffer.add_string buf "[";
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf indent x)
      vs;
    Buffer.add_string buf "]"
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj kvs ->
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf (pad (indent + 2));
        Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape k));
        write buf (indent + 2) x)
      kvs;
    Buffer.add_string buf "\n";
    Buffer.add_string buf (pad indent);
    Buffer.add_string buf "}"

let to_string_pretty v =
  let b = Buffer.create 1024 in
  write b 0 v;
  Buffer.add_char b '\n';
  Buffer.contents b

let to_file path v =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string_pretty v))
