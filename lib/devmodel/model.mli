(** Explicit device-side state machines.

    Every simulated device (ixgbe, NVMe, virtio-net, virtio-blk)
    registers one model at creation.  The model tracks the device's
    lifecycle state, a completion/IRQ/DMA ledger, and the optional
    hostile engine, and is the evidence [Atmo_san.Driver_lint] checks:
    at quiescence no device may be [Undefined], no DMA may have escaped
    the IOMMU window, pending IRQs must be bounded, and every delivered
    completion must have been harvested by its driver.

    Faults and recoveries are surfaced as [Dev_fault]/[Dev_recover]
    flight-recorder events and [dev/<name>/faults] counters.  Counter
    bumps happen only when tracing is on, preserving the zero-overhead
    contract of the obs layer. *)

type state = Reset | Ready | Active | Recovering | Failed | Undefined

val state_name : state -> string

type t = {
  name : string;  (** metric key component, e.g. ["ixgbe0"] *)
  mutable device : int;  (** device id carried by obs events *)
  mutable state : state;
  mutable hostile : Hostile.t option;
  (* completion ledger *)
  mutable submitted : int;
  mutable delivered : int;  (** unique completions the device posted *)
  mutable harvested : int;  (** completions the driver consumed *)
  mutable dup_delivered : int;  (** extra duplicate posts (not in [delivered]) *)
  (* IRQ ledger *)
  mutable irq_raised : int;
  mutable irq_acked : int;
  mutable irq_masked : bool;
  mutable auto_mask : bool;
      (** driver storm protection: mask the vector when pending IRQs
          reach {!storm_threshold}.  Plants disable it. *)
  (* DMA ledger *)
  mutable escape_attempts : int;
      (** DMA the device aimed outside its IOMMU window *)
  mutable escape_blocked : int;  (** of those, how many the IOMMU rejected *)
  mutable faults : int;
  mutable recoveries : int;
}

val storm_threshold : int
(** Pending (raised − acked) IRQs above this count is a storm: 64. *)

val register : name:string -> device:int -> initial:state -> t
(** Create a model and add it to the process-global registry. *)

val all : unit -> t list
(** Registered models, oldest first. *)

val reset : unit -> unit
(** Empty the registry (tests and CLI runs call this so stale models
    from earlier device instances cannot leak into a lint pass). *)

val find : device:int -> t option
(** Most recently registered model for [device], if any. *)

val set_hostile : t -> Hostile.t option -> unit

val inject : t -> site:string -> Fault.kind list -> Fault.kind option
(** Consult the hostile engine at an injection site.  On injection the
    model enters [Recovering], the fault ledger and the
    [dev/<name>/faults] counter advance, and a [Dev_fault] event is
    emitted (when tracing). *)

val fault : t -> Fault.kind -> unit
(** Record a device fault observed outside the hostile engine. *)

val recovered : t -> Fault.kind -> unit
(** The driver absorbed a fault: emit [Dev_recover], count it, and
    return a [Recovering] model to [Active]. *)

(* Lifecycle *)

val on_setup : t -> unit
(** Rings programmed: any non-[Failed] state → [Ready]. *)

val on_op : t -> unit
(** Driver touched a configured device: [Ready]/[Active] → [Active]. *)

val force_undefined : t -> why:string -> unit
(** Plant hook: push the device into [Undefined] (what the paper's
    theorems forbid; [Driver_lint] must flag it). *)

(* Ledger *)
val note_submit : t -> int -> unit
val note_deliver : t -> int -> unit
val note_harvest : t -> int -> unit
val note_dup : t -> unit
val note_escape : t -> blocked:bool -> unit
(** The device attempted DMA outside its window; [blocked] says whether
    the IOMMU stopped it.  An unblocked escape is silent corruption and
    trips [drv-dma-escape]. *)

(* IRQs *)
val raise_irq : t -> unit
(** Device raises its vector.  Masked vectors don't count as pending;
    with [auto_mask] the driver masks at {!storm_threshold}. *)

val ack_irqs : t -> unit
(** Driver acknowledges all pending IRQs and unmasks the vector. *)

val pending_irqs : t -> int
val set_auto_mask : t -> bool -> unit
