(** Seeded, deterministic hostile-mode fault injection.

    An engine is attached to a device model and consulted at each
    injection site (descriptor read, completion post, IRQ raise).  Given
    the same seed, rate, and budget, the same sequence of [pick] calls
    yields the same faults — a failing hostile run is replayable from
    the seed alone ([atmo san --seed N]).

    The budget bounds total injections so benchmarks can state "at most
    [budget] faults were injected" and gate delivery ratios on it. *)

type t

val create : ?budget:int -> ?rate:int -> seed:int -> unit -> t
(** [create ~seed ()] is a fresh engine.  [budget] (default 64) is the
    maximum number of faults it will ever inject; [rate] (default 4)
    makes each opportunity inject with probability 1/[rate]. *)

val seed : t -> int
val budget_left : t -> int
val injected_count : t -> int

val injected : t -> (string * Fault.kind) list
(** Injection log, oldest first: (site, fault). *)

val pick : t -> site:string -> Fault.kind list -> Fault.kind option
(** One injection opportunity at [site]: with probability 1/rate (and
    while budget remains), pick one of [candidates] uniformly, charge
    the budget, log it, and return it.  [None] means behave well. *)

val rand : t -> int -> int
(** [rand t n] is a deterministic uniform draw in [0, n-1] (0 when
    [n <= 0]).  Devices use it for reorder positions and bogus values
    so the whole hostile run is a function of the seed. *)
