type kind =
  | Malformed_desc
  | Short_desc
  | Spurious_irq
  | Irq_storm
  | Reorder_completion
  | Duplicate_completion
  | Dma_escape

let all =
  [ Malformed_desc; Short_desc; Spurious_irq; Irq_storm; Reorder_completion;
    Duplicate_completion; Dma_escape ]

(* Codes are the wire encoding in [Atmo_obs.Event.Dev_fault] slots; keep
   in sync with [Atmo_obs.Event.fault_name] (cross-checked in tests). *)
let code = function
  | Malformed_desc -> 1
  | Short_desc -> 2
  | Spurious_irq -> 3
  | Irq_storm -> 4
  | Reorder_completion -> 5
  | Duplicate_completion -> 6
  | Dma_escape -> 7

let of_code n = List.find_opt (fun k -> code k = n) all

let name = function
  | Malformed_desc -> "malformed-desc"
  | Short_desc -> "short-desc"
  | Spurious_irq -> "spurious-irq"
  | Irq_storm -> "irq-storm"
  | Reorder_completion -> "reorder-completion"
  | Duplicate_completion -> "duplicate-completion"
  | Dma_escape -> "dma-escape"

let of_name s = List.find_opt (fun k -> name k = s) all

type error =
  | Bad_setup of string
  | Dma_fault of { iova : int; len : int }
  | Ring_full
  | Queue_full
  | Lba_out_of_range of { lba : int; capacity : int }
  | Bad_block_size of { expected : int; got : int }
  | Malformed of { slot : int; detail : string }
  | Short_frame of { len : int; min : int }
  | Duplicate of { tag : int }
  | Unknown_completion of { tag : int }
  | Device_failed

let error_to_string = function
  | Bad_setup s -> Printf.sprintf "bad setup: %s" s
  | Dma_fault { iova; len } ->
    Printf.sprintf "DMA fault: iova=0x%x len=%d rejected by the IOMMU" iova len
  | Ring_full -> "ring full"
  | Queue_full -> "submission queue full"
  | Lba_out_of_range { lba; capacity } ->
    Printf.sprintf "lba %d out of range (capacity %d blocks)" lba capacity
  | Bad_block_size { expected; got } ->
    Printf.sprintf "bad block size: expected %d bytes, got %d" expected got
  | Malformed { slot; detail } ->
    if slot < 0 then Printf.sprintf "malformed device state: %s" detail
    else Printf.sprintf "malformed device state at slot %d: %s" slot detail
  | Short_frame { len; min } ->
    Printf.sprintf "short frame: %d bytes (minimum %d)" len min
  | Duplicate { tag } -> Printf.sprintf "duplicate completion tag %d" tag
  | Unknown_completion { tag } -> Printf.sprintf "completion for unknown tag %d" tag
  | Device_failed -> "device failed"

let pp_error ppf e = Format.pp_print_string ppf (error_to_string e)
