module Obs = Atmo_obs.Sink
module Event = Atmo_obs.Event
module Metrics = Atmo_obs.Metrics

type state = Reset | Ready | Active | Recovering | Failed | Undefined

let state_name = function
  | Reset -> "reset"
  | Ready -> "ready"
  | Active -> "active"
  | Recovering -> "recovering"
  | Failed -> "failed"
  | Undefined -> "undefined"

type t = {
  name : string;
  mutable device : int;
  mutable state : state;
  mutable hostile : Hostile.t option;
  mutable submitted : int;
  mutable delivered : int;
  mutable harvested : int;
  mutable dup_delivered : int;
  mutable irq_raised : int;
  mutable irq_acked : int;
  mutable irq_masked : bool;
  mutable auto_mask : bool;
  mutable escape_attempts : int;
  mutable escape_blocked : int;
  mutable faults : int;
  mutable recoveries : int;
}

let storm_threshold = 64

let registry : t list ref = ref []

let register ~name ~device ~initial =
  let t =
    {
      name;
      device;
      state = initial;
      hostile = None;
      submitted = 0;
      delivered = 0;
      harvested = 0;
      dup_delivered = 0;
      irq_raised = 0;
      irq_acked = 0;
      irq_masked = false;
      auto_mask = true;
      escape_attempts = 0;
      escape_blocked = 0;
      faults = 0;
      recoveries = 0;
    }
  in
  registry := t :: !registry;
  t

let all () = List.rev !registry
let reset () = registry := []
let find ~device = List.find_opt (fun t -> t.device = device) !registry

let set_hostile t h = t.hostile <- h

let note_fault t f =
  t.faults <- t.faults + 1;
  (match t.state with
   | Failed | Undefined -> ()
   | Reset | Ready | Active | Recovering -> t.state <- Recovering);
  if Obs.tracing () then begin
    Metrics.bump (Printf.sprintf "dev/%s/faults" t.name);
    Obs.emit_dev_fault ~device:t.device ~fault:(Fault.code f) ()
  end

let inject t ~site candidates =
  match t.hostile with
  | None -> None
  | Some h ->
    (match Hostile.pick h ~site candidates with
     | None -> None
     | Some f ->
       note_fault t f;
       Some f)

let fault t f = note_fault t f

let recovered t f =
  t.recoveries <- t.recoveries + 1;
  (match t.state with Recovering -> t.state <- Active | _ -> ());
  if Obs.tracing () then begin
    Metrics.bump (Printf.sprintf "dev/%s/recovered" t.name);
    Obs.emit_dev_recover ~device:t.device ~fault:(Fault.code f) ()
  end

let on_setup t = (match t.state with Failed -> () | _ -> t.state <- Ready)

let on_op t =
  match t.state with
  | Ready | Active -> t.state <- Active
  | Reset | Recovering | Failed | Undefined -> ()

let force_undefined t ~why:_ = t.state <- Undefined

let note_submit t n = t.submitted <- t.submitted + n
let note_deliver t n = t.delivered <- t.delivered + n
let note_harvest t n = t.harvested <- t.harvested + n
let note_dup t = t.dup_delivered <- t.dup_delivered + 1

let note_escape t ~blocked =
  t.escape_attempts <- t.escape_attempts + 1;
  if blocked then t.escape_blocked <- t.escape_blocked + 1

let pending_irqs t = t.irq_raised - t.irq_acked

let raise_irq t =
  if not t.irq_masked then begin
    t.irq_raised <- t.irq_raised + 1;
    (* storm protection: a real driver masks the vector and falls back
       to polling once the burst exceeds any plausible completion
       count; the plant disables this to prove the lint is live *)
    if t.auto_mask && pending_irqs t >= storm_threshold then t.irq_masked <- true
  end

let ack_irqs t =
  t.irq_acked <- t.irq_raised;
  t.irq_masked <- false

let set_auto_mask t v = t.auto_mask <- v
