(** Device-fault taxonomy and typed driver errors.

    Atmosphere's driver theorems say the kernel survives a misbehaving
    device: it never panics and never lets the device put kernel state
    in an undefined condition.  This module names the ways our device
    models misbehave (the hostile-mode fault kinds) and the typed errors
    drivers surface instead of crashing — the executable counterpart of
    "survive with a typed error". *)

(** {2 Fault kinds} *)

type kind =
  | Malformed_desc
      (** descriptor / completion record with impossible contents
          (length beyond the buffer, unknown tag, out-of-range id) *)
  | Short_desc  (** completion claiming fewer bytes than were sent *)
  | Spurious_irq  (** interrupt with no completion behind it *)
  | Irq_storm  (** unbounded interrupt burst from one cause *)
  | Reorder_completion  (** completions posted out of submission order *)
  | Duplicate_completion  (** the same completion posted twice *)
  | Dma_escape
      (** DMA targeting an address outside the device's IOMMU window *)

val all : kind list
(** Every fault kind, in [code] order. *)

val code : kind -> int
(** Stable wire code (1-based), carried by [Atmo_obs.Event.Dev_fault].
    Matches [Atmo_obs.Event.fault_name]. *)

val of_code : int -> kind option

val name : kind -> string
(** Kebab-case name, e.g. ["irq-storm"]. *)

val of_name : string -> kind option

(** {2 Typed driver errors}

    Every recoverable failure a driver can hit — bad arguments, a DMA
    the IOMMU refused, ring/queue exhaustion, or device misbehaviour it
    detected and absorbed.  Drivers return these instead of raising. *)

type error =
  | Bad_setup of string  (** impossible geometry or arguments *)
  | Dma_fault of { iova : int; len : int }
      (** the IOMMU rejected a driver-initiated DMA access *)
  | Ring_full
  | Queue_full
  | Lba_out_of_range of { lba : int; capacity : int }
  | Bad_block_size of { expected : int; got : int }
  | Malformed of { slot : int; detail : string }
      (** device-visible ring state failed validation; [slot] is the
          ring slot or tag involved, [-1] when not slot-specific *)
  | Short_frame of { len : int; min : int }
  | Duplicate of { tag : int }  (** completion tag already harvested *)
  | Unknown_completion of { tag : int }
  | Device_failed  (** device model is in its terminal [Failed] state *)

val error_to_string : error -> string
val pp_error : Format.formatter -> error -> unit
