type t = {
  seed : int;
  mutable state : int64;
  mutable budget : int;
  rate : int;
  mutable log : (string * Fault.kind) list;  (* newest first *)
  mutable count : int;
}

let create ?(budget = 64) ?(rate = 4) ~seed () =
  if rate <= 0 then invalid_arg "Hostile.create: rate <= 0";
  (* xorshift64 needs a nonzero state; fold the seed through a odd
     multiplier so nearby seeds diverge immediately *)
  let state = Int64.logor (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) 1L in
  { seed; state; budget; rate; log = []; count = 0 }

let seed t = t.seed
let budget_left t = t.budget
let injected_count t = t.count
let injected t = List.rev t.log

let next t =
  let s = t.state in
  let s = Int64.logxor s (Int64.shift_left s 13) in
  let s = Int64.logxor s (Int64.shift_right_logical s 7) in
  let s = Int64.logxor s (Int64.shift_left s 17) in
  t.state <- s;
  s

let rand t n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

let pick t ~site candidates =
  if t.budget <= 0 || candidates = [] then None
  else if rand t t.rate <> 0 then None
  else begin
    let f = List.nth candidates (rand t (List.length candidates)) in
    t.budget <- t.budget - 1;
    t.count <- t.count + 1;
    t.log <- (site, f) :: t.log;
    Some f
  end
