(** SMP contention simulator.

    The kernel is logically single-threaded; this module models what a
    multicore machine does to it under two lock regimes:

    - {b Big_lock}: one machine-wide FIFO lock serializes all kernel
      time (the paper's §3 design).  Adding CPUs parallelizes user-mode
      think time only; kernel throughput saturates.
    - {b Fine_grained}: each kernel entry waits only for its lock
      footprint — its CPU's run-queue lock, the sharded endpoint lock
      of the IPC it performs, and the exclusive permission-map writer
      lock for address-space and lifecycle calls (reads are
      epoch-validated and lock-free).  Footprints are acquired in the
      fixed hierarchy cpu-queue < endpoint < map-writer.

    Both regimes drive the {e identical} kernel: same per-CPU topology
    ([Proc_mgr.set_sched_cpus]), same placement and homes, same
    entering-CPU steering, same steal seed.  Only the cycle model
    differs, and timing never feeds back into kernel logic — so return
    values, abstract state and scheduling decisions are bit-identical
    across regimes.  [bench smp] asserts exactly that (the on/off
    oracle) and measures the scaling curve the regimes diverge on.
    Container CPU reservations are honored in both: a thread may only
    be placed on a CPU its owning container reserved. *)

type regime = Big_lock | Fine_grained

val regime_name : regime -> string

type program = {
  thread : int;
  think_cycles : int;  (** user-mode work between kernel entries *)
  call_of : int -> Atmo_spec.Syscall.t;  (** the i-th system call *)
}

type stats = {
  cpus : int;
  regime : regime;
  syscalls_executed : int;
  wall_cycles : int;  (** completion time of the last thread *)
  lock_wait_cycles : int;  (** total cycles spent queued on locks *)
  lock_wait_by_cpu : int array;
      (** the same wait split by entering CPU; also exported as the
          [smp/lock_wait/<cpu>] counter family, pre-created for every
          CPU in order so [Metrics.dump] is deterministic under any
          interleaving *)
  busy_cycles : int array;  (** per-CPU think + kernel time *)
  steals : int;  (** run-queue work steals during the run *)
  placement : (int * int) list;  (** (thread, cpu) assignments *)
}

val syscall_cycles : Cost.t -> Atmo_spec.Syscall.t -> int
(** Kernel-path cost of one call under the cycle model (IPC at the
    call/reply figure, mapping at the map-page figure, a generic
    trap cost otherwise). *)

val run :
  ?regime:regime ->
  ?steal_seed:int ->
  ?observe:(cpu:int -> iter:int -> thread:int -> Atmo_spec.Syscall.ret -> unit) ->
  Atmo_core.Kernel.t ->
  cost:Cost.t ->
  cpus:int ->
  programs:program list ->
  iterations:int ->
  (stats, string) result
(** Place each program's thread on an allowed CPU (error if a thread's
    container reserved none of the available CPUs), then simulate
    [iterations] think+syscall rounds per thread.  System calls really
    execute against the kernel on the thread's placed CPU
    ([Proc_mgr.set_cpu]), with the run-queue topology sized to [cpus].
    [regime] selects the cycle model (default [Big_lock]);
    [steal_seed] seeds the work-stealing victim rotation identically in
    both regimes; [observe] sees every syscall's return value in
    execution order — the hook the cross-regime oracle hangs off. *)

val throughput : stats -> float
(** Syscalls per second at the model frequency. *)
