open Atmo_util
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall

type program = {
  thread : int;
  think_cycles : int;
  call_of : int -> Syscall.t;
}

type stats = {
  cpus : int;
  syscalls_executed : int;
  wall_cycles : int;
  lock_wait_cycles : int;
  busy_cycles : int array;
  placement : (int * int) list;
}

let syscall_cycles (cost : Cost.t) = function
  | Syscall.Send _ | Syscall.Recv _ | Syscall.Send_nb _ | Syscall.Recv_nb _
  | Syscall.Recv_reject _ ->
    Cost.atmo_call_reply cost
  | Syscall.Mmap { count; _ } -> cost.Cost.map_page * max 1 count
  | Syscall.Munmap { count; _ } -> (cost.Cost.map_page / 2) * max 1 count
  | Syscall.Io_map _ | Syscall.Io_unmap _ -> cost.Cost.map_page
  | Syscall.Yield -> cost.Cost.syscall_entry_exit + (2 * cost.Cost.ipc_oneway / 3)
  | Syscall.Irq_fire _ -> cost.Cost.ipc_oneway
  | Syscall.Mprotect _ | Syscall.New_container _ | Syscall.New_process
  | Syscall.New_thread | Syscall.New_endpoint _ | Syscall.Close_endpoint _
  | Syscall.Terminate_container _ | Syscall.Terminate_process _
  | Syscall.Assign_device _ | Syscall.Register_irq _ ->
    cost.Cost.syscall_entry_exit + 900

(* CPUs a thread may run on: its container's reservation intersected
   with the machine; an empty reservation means "any CPU". *)
let allowed_cpus k ~thread ~cpus =
  match Kernel.container_of_thread k ~thread with
  | None -> Iset.empty
  | Some cntr ->
    let c = Atmo_pm.Perm_map.borrow k.Kernel.pm.Atmo_pm.Proc_mgr.cntr_perms ~ptr:cntr in
    let machine = Iset.of_range ~lo:0 ~hi:cpus in
    let reserved = c.Atmo_pm.Container.cpus in
    if Iset.is_empty reserved then machine else Iset.inter reserved machine

let run k ~cost ~cpus ~programs ~iterations =
  if cpus <= 0 then Error "Smp.run: cpus <= 0"
  else begin
    (* least-loaded placement over each thread's allowed CPUs *)
    let load = Array.make cpus 0 in
    let placement = ref [] in
    let place_err = ref None in
    List.iter
      (fun p ->
        let allowed = allowed_cpus k ~thread:p.thread ~cpus in
        if Iset.is_empty allowed then
          (if !place_err = None then
             place_err :=
               Some (Printf.sprintf "thread 0x%x has no allowed CPU" p.thread))
        else begin
          let best =
            Iset.fold
              (fun c acc ->
                match acc with
                | None -> Some c
                | Some b -> if load.(c) < load.(b) then Some c else acc)
              allowed None
          in
          let cpu = Option.get best in
          load.(cpu) <- load.(cpu) + 1;
          placement := (p.thread, cpu) :: !placement
        end)
      programs;
    match !place_err with
    | Some msg -> Error msg
    | None ->
      let placement = List.rev !placement in
      let cpu_of = Hashtbl.create 8 in
      List.iter (fun (th, c) -> Hashtbl.replace cpu_of th c) placement;
      (* event simulation: per-thread and per-CPU readiness plus a FIFO
         big lock.  Threads sharing a CPU interleave think time; the
         lock serializes kernel time machine-wide. *)
      let cpu_free = Array.make cpus 0 in
      let busy = Array.make cpus 0 in
      let lock_free = ref 0 in
      let lock_wait = ref 0 in
      let executed = ref 0 in
      let wall = ref 0 in
      (* When tracing, events recorded during kernel entries are stamped
         with the simulated lock-grant time and attributed to the
         entering CPU; the simulator owns the timeline, the kernel code
         stays clock-free. *)
      let tracing = Atmo_obs.Sink.tracing () in
      let sim_now = ref 0 in
      if tracing then Atmo_obs.Sink.set_clock (fun () -> !sim_now);
      let thread_ready = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace thread_ready p.thread 0) programs;
      for i = 0 to iterations - 1 do
        List.iter
          (fun p ->
            let cpu = Hashtbl.find cpu_of p.thread in
            let ready = Hashtbl.find thread_ready p.thread in
            (* user-mode think occupies the CPU *)
            let think_start = max ready cpu_free.(cpu) in
            let lock_request = think_start + p.think_cycles in
            let call = p.call_of i in
            let kcycles = syscall_cycles cost call in
            let grant = max lock_request !lock_free in
            lock_wait := !lock_wait + (grant - lock_request);
            let span =
              if tracing then begin
                sim_now := grant;
                Atmo_obs.Sink.set_cpu cpu;
                (* spans carry the cycle-model interval boundaries: the
                   simulator owns the timeline, so think time, lock wait
                   and the kernel entry each get their exact extent and
                   are charged to the caller's container/process/thread *)
                let container = Kernel.container_of_thread k ~thread:p.thread in
                let proc = Kernel.proc_of_thread k ~thread:p.thread in
                let uspan =
                  Atmo_obs.Span.begin_ ~ts:think_start ?container ?proc
                    ~thread:p.thread Atmo_obs.Span.User
                in
                Atmo_obs.Span.end_ ~ts:lock_request uspan;
                if grant > lock_request then begin
                  let w =
                    Atmo_obs.Span.begin_ ~ts:lock_request ?container ?proc
                      ~thread:p.thread Atmo_obs.Span.Lock_wait
                  in
                  Atmo_obs.Span.end_ ~ts:grant w
                end;
                Atmo_obs.Sink.emit
                  (Atmo_obs.Event.Lock_acquire
                     { cpu; wait_cycles = grant - lock_request });
                Atmo_obs.Metrics.observe "smp/lock_wait" (grant - lock_request);
                Atmo_obs.Metrics.observe ("lat/syscall/" ^ Syscall.name call) kcycles;
                Atmo_obs.Span.begin_ ~ts:grant ?container ?proc ~thread:p.thread
                  (Atmo_obs.Span.Syscall (Syscall.number call))
              end
              else 0
            in
            (* the call really executes against the kernel, under the
               modelled big lock (reported to the lock-discipline
               checker when atmo-san is armed) *)
            if Atmo_san.Lockcheck.armed () then
              Atmo_san.Lockcheck.locked ~site:"smp.big_lock" ~cpu (fun () ->
                  ignore (Kernel.step k ~thread:p.thread call))
            else ignore (Kernel.step k ~thread:p.thread call);
            incr executed;
            let finish = grant + kcycles in
            if span <> 0 then begin
              sim_now := finish;
              Atmo_obs.Span.end_ ~ts:finish span
            end;
            lock_free := finish;
            (* kernel time also occupies the caller's CPU *)
            cpu_free.(cpu) <- finish;
            busy.(cpu) <- busy.(cpu) + p.think_cycles + kcycles;
            Hashtbl.replace thread_ready p.thread finish;
            if finish > !wall then wall := finish)
          programs
      done;
      Ok
        {
          cpus;
          syscalls_executed = !executed;
          wall_cycles = !wall;
          lock_wait_cycles = !lock_wait;
          busy_cycles = busy;
          placement;
        }
  end

let throughput s =
  if s.wall_cycles = 0 then 0.
  else float_of_int s.syscalls_executed /. float_of_int s.wall_cycles *. 2.2e9
