open Atmo_util
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Proc_mgr = Atmo_pm.Proc_mgr
module Lockcheck = Atmo_san.Lockcheck

type regime = Big_lock | Fine_grained

let regime_name = function Big_lock -> "big-lock" | Fine_grained -> "fine-grained"

type program = {
  thread : int;
  think_cycles : int;
  call_of : int -> Syscall.t;
}

type stats = {
  cpus : int;
  regime : regime;
  syscalls_executed : int;
  wall_cycles : int;
  lock_wait_cycles : int;
  lock_wait_by_cpu : int array;
  busy_cycles : int array;
  steals : int;
  placement : (int * int) list;
}

let syscall_cycles (cost : Cost.t) = function
  | Syscall.Send _ | Syscall.Recv _ | Syscall.Send_nb _ | Syscall.Recv_nb _
  | Syscall.Recv_reject _ ->
    Cost.atmo_call_reply cost
  | Syscall.Mmap { count; _ } -> cost.Cost.map_page * max 1 count
  | Syscall.Munmap { count; _ } -> (cost.Cost.map_page / 2) * max 1 count
  | Syscall.Io_map _ | Syscall.Io_unmap _ -> cost.Cost.map_page
  | Syscall.Yield -> cost.Cost.syscall_entry_exit + (2 * cost.Cost.ipc_oneway / 3)
  | Syscall.Irq_fire _ -> cost.Cost.ipc_oneway
  | Syscall.Mprotect _ | Syscall.New_container _ | Syscall.New_process
  | Syscall.New_thread | Syscall.New_endpoint _ | Syscall.Close_endpoint _
  | Syscall.Terminate_container _ | Syscall.Terminate_process _
  | Syscall.Assign_device _ | Syscall.Register_irq _ ->
    cost.Cost.syscall_entry_exit + 900

(* CPUs a thread may run on: its container's reservation intersected
   with the machine; an empty reservation means "any CPU". *)
let allowed_cpus k ~thread ~cpus =
  match Kernel.container_of_thread k ~thread with
  | None -> Iset.empty
  | Some cntr ->
    let c = Atmo_pm.Perm_map.borrow k.Kernel.pm.Proc_mgr.cntr_perms ~ptr:cntr in
    let machine = Iset.of_range ~lo:0 ~hi:cpus in
    let reserved = c.Atmo_pm.Container.cpus in
    if Iset.is_empty reserved then machine else Iset.inter reserved machine

(* The lock footprint of one kernel entry under the fine-grained
   regime, in hierarchy order (cpu-queue < endpoint < map-writer):

   - every entry touches the caller's CPU run queue;
   - IPC serializes only on its endpoint's shard — rendezvous on
     different endpoints proceed in parallel;
   - interrupt delivery serializes on the shard of its route;
   - address-space and lifecycle calls take the exclusive permission-
     map writer lock (reads are epoch-validated and lock-free, see
     [Perm_map.read_section]); a yield takes no lock beyond its queue. *)
let footprint k ~thread ~cpu call =
  let shards = Atmo_pm.Kconfig.endpoint_lock_shards in
  let shard_of_slot slot =
    match Atmo_pm.Perm_map.borrow_opt k.Kernel.pm.Proc_mgr.thrd_perms ~ptr:thread with
    | None -> 0
    | Some th ->
      (match Atmo_pm.Thread.slot th slot with
       | Some ep -> ep / Atmo_hw.Phys_mem.page_size mod shards
       | None -> 0)
  in
  match call with
  | Syscall.Send { slot; _ }
  | Syscall.Recv { slot }
  | Syscall.Send_nb { slot; _ }
  | Syscall.Recv_nb { slot }
  | Syscall.Recv_reject { slot } ->
    [ Lockcheck.Cpu_queue cpu; Lockcheck.Endpoint_shard (shard_of_slot slot) ]
  | Syscall.Irq_fire { device } ->
    [ Lockcheck.Cpu_queue cpu; Lockcheck.Endpoint_shard (device mod shards) ]
  | Syscall.Yield -> [ Lockcheck.Cpu_queue cpu ]
  | Syscall.Mmap _ | Syscall.Munmap _ | Syscall.Mprotect _ | Syscall.Io_map _
  | Syscall.Io_unmap _ | Syscall.New_container _ | Syscall.New_process
  | Syscall.New_thread | Syscall.New_endpoint _ | Syscall.Close_endpoint _
  | Syscall.Terminate_container _ | Syscall.Terminate_process _
  | Syscall.Assign_device _ | Syscall.Register_irq _ ->
    [ Lockcheck.Cpu_queue cpu; Lockcheck.Map_writer ]

let steal_metric = Atmo_obs.Metrics.counter "sched/steal"

(* Traced-path metrics are looked up once and fed through cached
   handles: a registry probe (string concat + hash) per kernel entry
   would dominate the zero-alloc emit path it sits next to. *)
let lock_wait_hist = lazy (Atmo_obs.Metrics.histogram "smp/lock_wait")

let syscall_lat : Atmo_obs.Metrics.Histogram.t option array = Array.make 32 None

let syscall_lat_hist call =
  let n = Syscall.number call in
  match syscall_lat.(n) with
  | Some h -> h
  | None ->
    let h = Atmo_obs.Metrics.histogram ("lat/syscall/" ^ Syscall.name call) in
    syscall_lat.(n) <- Some h;
    h

let run ?(regime = Big_lock) ?(steal_seed = 42) ?observe k ~cost ~cpus ~programs
    ~iterations =
  if cpus <= 0 then Error "Smp.run: cpus <= 0"
  else begin
    (* least-loaded placement over each thread's allowed CPUs *)
    let load = Array.make cpus 0 in
    let placement = ref [] in
    let place_err = ref None in
    List.iter
      (fun p ->
        let allowed = allowed_cpus k ~thread:p.thread ~cpus in
        if Iset.is_empty allowed then
          (if !place_err = None then
             place_err :=
               Some (Printf.sprintf "thread 0x%x has no allowed CPU" p.thread))
        else begin
          let best =
            Iset.fold
              (fun c acc ->
                match acc with
                | None -> Some c
                | Some b -> if load.(c) < load.(b) then Some c else acc)
              allowed None
          in
          let cpu = Option.get best in
          load.(cpu) <- load.(cpu) + 1;
          placement := (p.thread, cpu) :: !placement
        end)
      programs;
    match !place_err with
    | Some msg -> Error msg
    | None ->
      let placement = List.rev !placement in
      let cpu_of = Hashtbl.create 8 in
      List.iter (fun (th, c) -> Hashtbl.replace cpu_of th c) placement;
      (* The scheduler topology follows the machine: one run queue per
         CPU, each program's thread homed where it was placed.  Both
         regimes configure it identically — the regime changes the
         cycle model only, never a kernel decision, which is what makes
         the on/off oracle's bit-identity argument go through.  The
         double [set_sched_cpus] is deliberate: the first resize parks
         queued threads by their stale homes, setting homes and
         resizing again redistributes them deterministically. *)
      let pm = k.Kernel.pm in
      Proc_mgr.set_sched_cpus pm cpus;
      List.iter (fun (th, c) -> Proc_mgr.set_home pm ~thread:th ~cpu:c) placement;
      Proc_mgr.set_sched_cpus pm cpus;
      Proc_mgr.set_steal_seed pm steal_seed;
      let steals0 = Atmo_obs.Metrics.Counter.value steal_metric in
      (* per-CPU starvation accounting: the counter family is created
         up front for every CPU so a [Metrics.dump] is deterministic
         under any interleaving (zero-valued entries included, names
         sorted) *)
      let lw_ctrs =
        Array.init cpus (fun c ->
            Atmo_obs.Metrics.counter (Printf.sprintf "smp/lock_wait/%d" c))
      in
      (* event simulation: per-thread and per-CPU readiness plus the
         lock model.  Big_lock: one FIFO lock serializes kernel time
         machine-wide.  Fine_grained: each kernel entry waits only for
         its footprint — its CPU's queue lock, its endpoint's shard,
         the map-writer lock for address-space writers. *)
      let cpu_free = Array.make cpus 0 in
      let busy = Array.make cpus 0 in
      let lock_free = ref 0 in
      let cpuq_free = Array.make cpus 0 in
      let ep_free = Array.make Atmo_pm.Kconfig.endpoint_lock_shards 0 in
      let mapw_free = ref 0 in
      let lock_wait = ref 0 in
      let lock_wait_cpu = Array.make cpus 0 in
      let executed = ref 0 in
      let wall = ref 0 in
      (* When tracing, events recorded during kernel entries are stamped
         with the simulated lock-grant time and attributed to the
         entering CPU; the simulator owns the timeline, the kernel code
         stays clock-free. *)
      let tracing = Atmo_obs.Sink.tracing () in
      let sim_now = ref 0 in
      if tracing then Atmo_obs.Sink.set_clock (fun () -> !sim_now);
      let thread_ready = Hashtbl.create 8 in
      List.iter (fun p -> Hashtbl.replace thread_ready p.thread 0) programs;
      let free_of = function
        | Lockcheck.Cpu_queue c -> cpuq_free.(c)
        | Lockcheck.Endpoint_shard s -> ep_free.(s)
        | Lockcheck.Map_writer -> !mapw_free
      in
      let set_free kl v =
        match kl with
        | Lockcheck.Cpu_queue c -> cpuq_free.(c) <- v
        | Lockcheck.Endpoint_shard s -> ep_free.(s) <- v
        | Lockcheck.Map_writer -> mapw_free := v
      in
      for i = 0 to iterations - 1 do
        List.iter
          (fun p ->
            let cpu = Hashtbl.find cpu_of p.thread in
            let ready = Hashtbl.find thread_ready p.thread in
            (* user-mode think occupies the CPU *)
            let think_start = max ready cpu_free.(cpu) in
            let lock_request = think_start + p.think_cycles in
            let call = p.call_of i in
            let kcycles = syscall_cycles cost call in
            let fp =
              match regime with
              | Big_lock -> []
              | Fine_grained -> footprint k ~thread:p.thread ~cpu call
            in
            let grant =
              match regime with
              | Big_lock -> max lock_request !lock_free
              | Fine_grained ->
                List.fold_left (fun acc kl -> max acc (free_of kl)) lock_request fp
            in
            let waited = grant - lock_request in
            lock_wait := !lock_wait + waited;
            lock_wait_cpu.(cpu) <- lock_wait_cpu.(cpu) + waited;
            Atmo_obs.Metrics.Counter.incr ~by:waited lw_ctrs.(cpu);
            let span =
              if tracing then begin
                sim_now := grant;
                Atmo_obs.Sink.set_cpu cpu;
                (* spans carry the cycle-model interval boundaries: the
                   simulator owns the timeline, so think time, lock wait
                   and the kernel entry each get their exact extent and
                   are charged to the caller's container/process/thread *)
                let container = Kernel.container_of_thread k ~thread:p.thread in
                let proc = Kernel.proc_of_thread k ~thread:p.thread in
                let uspan =
                  Atmo_obs.Span.begin_ ~ts:think_start ?container ?proc
                    ~thread:p.thread Atmo_obs.Span.User
                in
                Atmo_obs.Span.end_ ~ts:lock_request uspan;
                if grant > lock_request then begin
                  let w =
                    Atmo_obs.Span.begin_ ~ts:lock_request ?container ?proc
                      ~thread:p.thread Atmo_obs.Span.Lock_wait
                  in
                  Atmo_obs.Span.end_ ~ts:grant w
                end;
                Atmo_obs.Sink.emit_lock_acquire ~cpu_id:cpu
                  ~wait_cycles:(grant - lock_request) ();
                Atmo_obs.Metrics.Histogram.observe (Lazy.force lock_wait_hist)
                  (grant - lock_request);
                Atmo_obs.Metrics.Histogram.observe (syscall_lat_hist call) kcycles;
                Atmo_obs.Span.begin_ ~ts:grant ?container ?proc ~thread:p.thread
                  (Atmo_obs.Span.Syscall (Syscall.number call))
              end
              else 0
            in
            (* the call really executes against the kernel, on the
               entering CPU, under the modelled lock regime (reported
               to the lock-discipline checker when atmo-san is armed) *)
            Proc_mgr.set_cpu pm cpu;
            let do_step () = Kernel.step k ~thread:p.thread call in
            let ret =
              if Lockcheck.armed () then
                match regime with
                | Big_lock -> Lockcheck.locked ~site:"smp.big_lock" ~cpu do_step
                | Fine_grained ->
                  Lockcheck.with_classes ~site:"smp.fine_grained" ~cpu fp do_step
              else do_step ()
            in
            (match observe with
             | Some f -> f ~cpu ~iter:i ~thread:p.thread ret
             | None -> ());
            incr executed;
            let finish = grant + kcycles in
            if span <> 0 then begin
              sim_now := finish;
              Atmo_obs.Span.end_ ~ts:finish span
            end;
            (match regime with
             | Big_lock -> lock_free := finish
             | Fine_grained -> List.iter (fun kl -> set_free kl finish) fp);
            (* kernel time also occupies the caller's CPU *)
            cpu_free.(cpu) <- finish;
            busy.(cpu) <- busy.(cpu) + p.think_cycles + kcycles;
            Hashtbl.replace thread_ready p.thread finish;
            if finish > !wall then wall := finish)
          programs
      done;
      Proc_mgr.set_cpu pm 0;
      Ok
        {
          cpus;
          regime;
          syscalls_executed = !executed;
          wall_cycles = !wall;
          lock_wait_cycles = !lock_wait;
          lock_wait_by_cpu = lock_wait_cpu;
          busy_cycles = busy;
          steals = Atmo_obs.Metrics.Counter.value steal_metric - steals0;
          placement;
        }
  end

let throughput s =
  if s.wall_cycles = 0 then 0.
  else float_of_int s.syscalls_executed /. float_of_int s.wall_cycles *. 2.2e9
