(** The physical page allocator.

    Faithful executable model of the paper's allocator (§4.2): dynamic
    memory for kernel objects and user mappings is handed out at 4 KiB,
    2 MiB and 1 GiB granularity from three doubly-linked free lists; a
    flat page-metadata array supports O(1) unlink when 4 KiB frames are
    merged into superpages; every frame is always in exactly one of the
    states free / allocated / mapped / merged.

    The allocator exposes its internal state as sets (the paper's
    "explicit memory allocator state"), which the kernel's leak-freedom
    and safety invariants quantify over. *)

type purpose =
  | Kernel  (** frame will hold a kernel object or page-table node *)
  | User  (** frame will be mapped into an address space (refcounted) *)

type t

val create : Atmo_hw.Phys_mem.t -> reserved_frames:int -> t
(** Manage all frames of the memory except the first [reserved_frames]
    (boot image, per-CPU data: outside the allocator, like the paper's
    trusted boot environment). *)

val mem : t -> Atmo_hw.Phys_mem.t
(** The physical memory this allocator manages. *)

(** {2 Sanitizer event hook}

    Process-global allocator-lifecycle observer used by atmo_san's shadow
    permission map; zero-overhead (one bool load per site) when not
    installed.  [Free_request] fires at the entry of
    {!free_kernel_page}/{!dec_ref} {e before} the allocator's own state
    guard, so an external checker can classify a double free even though
    the allocator will also reject it. *)

type event =
  | Created of t  (** a fresh allocator came up (all managed frames free) *)
  | Claim of { alloc : t; addr : int; frames : int; purpose : purpose }
      (** a block of [frames] 4 KiB frames headed at [addr] left a free list *)
  | Free_request of { alloc : t; addr : int; what : string }
      (** a caller asked to release [addr] via entry point [what] *)
  | Release of { alloc : t; addr : int; frames : int }
      (** a block actually returned to its free list *)

val set_event_hook : (event -> unit) option -> unit
(** Single-subscriber shim over {!add_event_hook} under a reserved key;
    kept so existing callers are unchanged. *)

val add_event_hook : key:string -> (event -> unit) -> unit
(** Subscribe under [key] (replacing any previous subscriber with the
    same key); all subscribers observe every event. *)

val remove_event_hook : key:string -> unit

val mutation_count : unit -> int
(** Intrinsic count of allocator events ever dispatched, over all
    allocator instances; always on, independent of subscribers.
    atmo_san's [stale-proof] lint compares it against the dirty
    tracker's observed count. *)

val managed_frames : t -> int
val free_count_4k : t -> int
val free_count_2m : t -> int
val free_count_1g : t -> int

val alloc_4k : t -> purpose:purpose -> int option
(** Allocate and zero a 4 KiB frame; returns its base address.  Splits a
    free 2 MiB block on demand when the 4 KiB list is empty.  [None]
    models out-of-memory. *)

val alloc_2m : t -> purpose:purpose -> int option
(** Allocate a 2 MiB block; merges free 4 KiB frames on demand (scanning
    the page array, unlinking each constituent in O(1)), or splits a free
    1 GiB block. *)

val alloc_1g : t -> purpose:purpose -> int option

val free_kernel_page : t -> addr:int -> unit
(** Return an [Allocated] block of any size to its free list.  Raises
    [Invalid_argument] if the frame is not an allocated head. *)

val inc_ref : t -> addr:int -> unit
(** Additional mapping of a [Mapped] block (page shared over IPC). *)

val dec_ref : t -> addr:int -> [ `Freed | `Live ]
(** Drop one mapping; the block returns to its free list when the count
    reaches zero. *)

val ref_count : t -> addr:int -> int option
(** Reference count of a mapped head frame, if the frame is mapped. *)

val state_of : t -> addr:int -> Page_state.state option
(** Metadata of the frame containing [addr]; [None] if unmanaged. *)

val size_of : t -> addr:int -> Page_state.size option
(** Block size if [addr] is a block head. *)

val is_free : t -> addr:int -> bool
(** The paper's [page_is_free] spec function. *)

(** {2 Spec views (ghost state)} *)

val free_pages_4k : t -> Atmo_util.Iset.t
(** Base addresses of free 4 KiB frames. *)

val free_pages_2m : t -> Atmo_util.Iset.t
val free_pages_1g : t -> Atmo_util.Iset.t

val allocated_pages : t -> Atmo_util.Iset.t
(** Head addresses of blocks in the [Allocated] state. *)

val mapped_pages : t -> Atmo_util.Iset.t
val merged_pages : t -> Atmo_util.Iset.t
(** Addresses of body frames absorbed into superpage blocks. *)

val frames_of_block : t -> addr:int -> Atmo_util.Iset.t
(** All 4 KiB frame addresses covered by the block headed at [addr]. *)

val try_merge_2m : t -> bool
(** Attempt to form one free 2 MiB block from 512 aligned free 4 KiB
    frames; [true] on success.  Exposed for tests; [alloc_2m] calls it on
    demand. *)

val try_merge_1g : t -> bool

val wf : t -> (unit, string) result
(** The allocator's well-formedness invariant: free lists structurally
    sound, list membership consistent with frame states, merged frames
    point into a live superpage head of the right size and alignment,
    reference counts positive, and the four state sets partition the
    managed frames. *)
