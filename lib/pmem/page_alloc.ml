open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
open Page_state

type purpose = Kernel | User

type t = {
  mem : Phys_mem.t;
  first : int;  (* first managed frame index *)
  nframes : int;  (* total frames in the machine *)
  meta : meta array;  (* indexed by frame number *)
  free4k : Dll.t;
  free2m : Dll.t;
  free1g : Dll.t;
}

let frame_addr i = i * Phys_mem.page_size
let frame_of_addr a = a / Phys_mem.page_size

(* Allocator event hook for the sanitizer layer (atmo_san): same
   zero-overhead discipline as the Phys_mem access hook — one
   mutable-bool load per site when nothing is installed. *)
type event =
  | Created of t
  | Claim of { alloc : t; addr : int; frames : int; purpose : purpose }
  | Free_request of { alloc : t; addr : int; what : string }
  | Release of { alloc : t; addr : int; frames : int }

let hook_armed = ref false
let hooks : (string * (event -> unit)) list ref = ref []

let add_event_hook ~key f =
  hooks := (key, f) :: List.remove_assoc key !hooks;
  hook_armed := true

let remove_event_hook ~key =
  hooks := List.remove_assoc key !hooks;
  hook_armed := !hooks <> []

let legacy = "legacy-single-slot"

let set_event_hook = function
  | None -> remove_event_hook ~key:legacy
  | Some f -> add_event_hook ~key:legacy f

(* Intrinsic allocator-mutation counter: always on, bumped exactly once
   per event site (create/claim/release/free-request), independent of
   any subscriber — the stale-proof lint compares it against the dirty
   tracker's observed count.  Atomic so parallel discharge domains
   building scratch worlds stay safe. *)
let muts = Atomic.make 0
let mutation_count () = Atomic.get muts

let note ev =
  Atomic.incr muts;
  if !hook_armed then List.iter (fun (_, f) -> f ev) !hooks

let mem t = t.mem

let create mem ~reserved_frames =
  let nframes = Phys_mem.page_count mem in
  if reserved_frames < 0 || reserved_frames >= nframes then
    invalid_arg "Page_alloc.create: bad reserved_frames";
  let t =
    {
      mem;
      first = reserved_frames;
      nframes;
      meta = Array.init nframes (fun _ -> { state = Free; size = S4k });
      free4k = Dll.create ~capacity:nframes ~name:"free4k";
      free2m = Dll.create ~capacity:nframes ~name:"free2m";
      free1g = Dll.create ~capacity:nframes ~name:"free1g";
    }
  in
  for i = reserved_frames to nframes - 1 do
    Dll.push_back t.free4k i
  done;
  note (Created t);
  t

let managed_frames t = t.nframes - t.first
let free_count_4k t = Dll.length t.free4k
let free_count_2m t = Dll.length t.free2m
let free_count_1g t = Dll.length t.free1g

let managed t i = i >= t.first && i < t.nframes

let head_meta t ~addr op =
  let i = frame_of_addr addr in
  if not (managed t i) then
    invalid_arg (Printf.sprintf "Page_alloc.%s: 0x%x unmanaged" op addr);
  if not (Phys_mem.is_page_aligned addr) then
    invalid_arg (Printf.sprintf "Page_alloc.%s: 0x%x unaligned" op addr);
  (i, t.meta.(i))

let zero_block t i size =
  for j = i to i + frames_per size - 1 do
    Phys_mem.zero_page t.mem ~addr:(frame_addr j)
  done

let order_of = function S4k -> 0 | S2m -> 1 | S1g -> 2

let alloc_ctr = Atmo_obs.Metrics.counter "pmem/alloc"
let free_ctr = Atmo_obs.Metrics.counter "pmem/free"
let merge_ctr = Atmo_obs.Metrics.counter "pmem/superpage_merge"

let claim t i size purpose =
  let m = t.meta.(i) in
  note (Claim { alloc = t; addr = frame_addr i; frames = frames_per size; purpose });
  m.size <- size;
  m.state <- (match purpose with Kernel -> Allocated | User -> Mapped 1);
  zero_block t i size;
  if Atmo_obs.Sink.tracing () then begin
    Atmo_obs.Sink.emit_page_alloc ~addr:(frame_addr i) ~order:(order_of size) ();
    Atmo_obs.Metrics.Counter.incr alloc_ctr
  end;
  frame_addr i

(* Merge [count] aligned free sub-blocks of [sub] size headed at [i] into
   one block of [super] size.  Constituent heads are unlinked from their
   free list in O(1) via the page-array node indices; every absorbed
   frame — sub-heads and their bodies alike — is re-pointed at the new
   super-head. *)
let absorb t ~head ~sub ~free_list ~count =
  let stride = frames_per sub in
  (* Every constituent is free, so no live translation should target the
     range — shooting it anyway keeps the TLB protocol airtight against
     a use-after-free mapping that the sanitizer would also flag. *)
  Atmo_hw.Tlb.shoot_frames t.mem ~lo:(frame_addr head)
    ~hi:(frame_addr (head + (count * stride)));
  for k = 0 to count - 1 do
    Dll.remove free_list (head + (k * stride))
  done;
  for j = head + 1 to head + (count * stride) - 1 do
    t.meta.(j).state <- Merged head;
    t.meta.(j).size <- S4k
  done

(* Scan the page array for an aligned run of [count] free blocks of
   [sub] size and merge them (the paper's superpage formation). *)
let try_merge t ~sub ~super ~sub_list ~super_list =
  let stride = frames_per sub in
  let span = frames_per super in
  let aligned_start = (t.first + span - 1) / span * span in
  let rec scan head =
    if head + span > t.nframes then false
    else begin
      let all_free = ref true in
      (let k = ref 0 in
       while !all_free && !k < span / stride do
         let j = head + (!k * stride) in
         let m = t.meta.(j) in
         if not (m.state = Free && equal_size m.size sub) then all_free := false;
         incr k
      done);
      if !all_free then begin
        absorb t ~head ~sub ~free_list:sub_list ~count:(span / stride);
        t.meta.(head).state <- Free;
        t.meta.(head).size <- super;
        Dll.push_back super_list head;
        if Atmo_obs.Sink.tracing () then begin
          Atmo_obs.Sink.emit_superpage_merge ~head:(frame_addr head)
            ~order:(order_of super) ();
          Atmo_obs.Metrics.Counter.incr merge_ctr
        end;
        true
      end
      else scan (head + span)
    end
  in
  scan aligned_start

let try_merge_2m t =
  try_merge t ~sub:S4k ~super:S2m ~sub_list:t.free4k ~super_list:t.free2m

(* Single pass that merges every eligible aligned group — used before a
   1 GiB promotion, where the one-at-a-time scan would be quadratic in
   machine size. *)
let merge_all t ~sub ~super ~sub_list ~super_list =
  let stride = frames_per sub in
  let span = frames_per super in
  let aligned_start = (t.first + span - 1) / span * span in
  let merged = ref 0 in
  let head = ref aligned_start in
  while !head + span <= t.nframes do
    let all_free = ref true in
    (let k = ref 0 in
     while !all_free && !k < span / stride do
       let j = !head + (!k * stride) in
       let m = t.meta.(j) in
       if not (m.state = Free && equal_size m.size sub) then all_free := false;
       incr k
    done);
    if !all_free then begin
      absorb t ~head:!head ~sub ~free_list:sub_list ~count:(span / stride);
      t.meta.(!head).state <- Free;
      t.meta.(!head).size <- super;
      Dll.push_back super_list !head;
      if Atmo_obs.Sink.tracing () then begin
        Atmo_obs.Sink.emit_superpage_merge ~head:(frame_addr !head)
          ~order:(order_of super) ();
        Atmo_obs.Metrics.Counter.incr merge_ctr
      end;
      incr merged
    end;
    head := !head + span
  done;
  !merged

let try_merge_1g t =
  (* Form all possible 2 MiB blocks first so a fully-free gigabyte
     region can always be promoted. *)
  ignore (merge_all t ~sub:S4k ~super:S2m ~sub_list:t.free4k ~super_list:t.free2m);
  try_merge t ~sub:S2m ~super:S1g ~sub_list:t.free2m ~super_list:t.free1g

(* Split a free block headed at [i] of [super] size into free blocks of
   [sub] size; body frames are re-pointed at their new sub-heads. *)
let split t ~head ~super ~sub ~sub_list =
  let stride = frames_per sub in
  let span = frames_per super in
  Atmo_hw.Tlb.shoot_frames t.mem ~lo:(frame_addr head) ~hi:(frame_addr (head + span));
  t.meta.(head).size <- sub;
  Dll.push_back sub_list head;
  let k = ref stride in
  while !k < span do
    let j = head + !k in
    t.meta.(j).state <- Free;
    t.meta.(j).size <- sub;
    Dll.push_back sub_list j;
    k := !k + stride
  done;
  if stride > 1 then
    for g = 0 to (span / stride) - 1 do
      let sub_head = head + (g * stride) in
      for b = sub_head + 1 to sub_head + stride - 1 do
        t.meta.(b).state <- Merged sub_head
      done
    done

let rec alloc_4k t ~purpose =
  match Dll.pop_front t.free4k with
  | Some i -> Some (claim t i S4k purpose)
  | None ->
    (match Dll.pop_front t.free2m with
     | Some head ->
       split t ~head ~super:S2m ~sub:S4k ~sub_list:t.free4k;
       alloc_4k t ~purpose
     | None ->
       (match Dll.pop_front t.free1g with
        | Some head ->
          split t ~head ~super:S1g ~sub:S2m ~sub_list:t.free2m;
          alloc_4k t ~purpose
        | None -> None))

let rec alloc_2m t ~purpose =
  match Dll.pop_front t.free2m with
  | Some i -> Some (claim t i S2m purpose)
  | None ->
    if try_merge_2m t then alloc_2m t ~purpose
    else
      (match Dll.pop_front t.free1g with
       | Some head ->
         split t ~head ~super:S1g ~sub:S2m ~sub_list:t.free2m;
         alloc_2m t ~purpose
       | None -> None)

let rec alloc_1g t ~purpose =
  match Dll.pop_front t.free1g with
  | Some i -> Some (claim t i S1g purpose)
  | None -> if try_merge_1g t then alloc_1g t ~purpose else None

let release t i =
  let m = t.meta.(i) in
  note (Release { alloc = t; addr = frame_addr i; frames = frames_per m.size });
  m.state <- Free;
  let list =
    match m.size with S4k -> t.free4k | S2m -> t.free2m | S1g -> t.free1g
  in
  Dll.push_back list i;
  if Atmo_obs.Sink.tracing () then begin
    Atmo_obs.Sink.emit_page_free ~addr:(frame_addr i) ~order:(order_of m.size) ();
    Atmo_obs.Metrics.Counter.incr free_ctr
  end

let free_kernel_page t ~addr =
  note (Free_request { alloc = t; addr; what = "free_kernel_page" });
  let i, m = head_meta t ~addr "free_kernel_page" in
  match m.state with
  | Allocated -> release t i
  | Free | Mapped _ | Merged _ ->
    invalid_arg
      (Format.asprintf "Page_alloc.free_kernel_page: 0x%x is %a" addr pp_state m.state)

let inc_ref t ~addr =
  let _, m = head_meta t ~addr "inc_ref" in
  match m.state with
  | Mapped n -> m.state <- Mapped (n + 1)
  | Free | Allocated | Merged _ ->
    invalid_arg
      (Format.asprintf "Page_alloc.inc_ref: 0x%x is %a" addr pp_state m.state)

let dec_ref t ~addr =
  note (Free_request { alloc = t; addr; what = "dec_ref" });
  let i, m = head_meta t ~addr "dec_ref" in
  match m.state with
  | Mapped 1 ->
    release t i;
    `Freed
  | Mapped n ->
    m.state <- Mapped (n - 1);
    `Live
  | Free | Allocated | Merged _ ->
    invalid_arg
      (Format.asprintf "Page_alloc.dec_ref: 0x%x is %a" addr pp_state m.state)

let ref_count t ~addr =
  let _, m = head_meta t ~addr "ref_count" in
  match m.state with Mapped n -> Some n | Free | Allocated | Merged _ -> None

let state_of t ~addr =
  let i = frame_of_addr addr in
  if managed t i then Some t.meta.(i).state else None

let size_of t ~addr =
  let i = frame_of_addr addr in
  if not (managed t i) then None
  else
    match t.meta.(i).state with
    | Merged _ -> None
    | Free | Allocated | Mapped _ -> Some t.meta.(i).size

let is_free t ~addr =
  match state_of t ~addr with Some Free -> true | _ -> false

let collect t pred =
  let acc = ref Iset.empty in
  for i = t.first to t.nframes - 1 do
    if pred t.meta.(i) then acc := Iset.add (frame_addr i) !acc
  done;
  !acc

let free_pages_4k t =
  collect t (fun m -> m.state = Free && m.size = S4k)

let free_pages_2m t =
  collect t (fun m -> m.state = Free && m.size = S2m)

let free_pages_1g t =
  collect t (fun m -> m.state = Free && m.size = S1g)

let allocated_pages t = collect t (fun m -> m.state = Allocated)

let mapped_pages t =
  collect t (fun m -> match m.state with Mapped _ -> true | _ -> false)

let merged_pages t =
  collect t (fun m -> match m.state with Merged _ -> true | _ -> false)

let frames_of_block t ~addr =
  let i, m = head_meta t ~addr "frames_of_block" in
  (match m.state with
   | Merged _ -> invalid_arg "Page_alloc.frames_of_block: body frame"
   | Free | Allocated | Mapped _ -> ());
  let n = frames_per m.size in
  let acc = ref Iset.empty in
  for j = i to i + n - 1 do
    acc := Iset.add (frame_addr j) !acc
  done;
  !acc

let wf t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e in
  let* () = Dll.wf t.free4k in
  let* () = Dll.wf t.free2m in
  let* () = Dll.wf t.free1g in
  let check_list list size =
    List.fold_left
      (fun acc i ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let m = t.meta.(i) in
          if m.state <> Free then
            err "frame %d on %s list but state %a" i (Dll.name list) pp_state m.state
          else if not (equal_size m.size size) then
            err "frame %d on %s list but size %a" i (Dll.name list) pp_size m.size
          else if i mod frames_per size <> 0 then
            err "frame %d on %s list misaligned" i (Dll.name list)
          else Ok ())
      (Ok ()) (Dll.to_list list)
  in
  let* () = check_list t.free4k S4k in
  let* () = check_list t.free2m S2m in
  let* () = check_list t.free1g S1g in
  let result = ref (Ok ()) in
  let fail fmt = Format.kasprintf (fun s -> if !result = Ok () then result := Error s) fmt in
  for i = t.first to t.nframes - 1 do
    let m = t.meta.(i) in
    (match m.state with
     | Free ->
       let list =
         match m.size with S4k -> t.free4k | S2m -> t.free2m | S1g -> t.free1g
       in
       if not (Dll.mem list i) then
         fail "free frame %d (%a) not on its free list" i pp_size m.size
     | Allocated | Mapped _ ->
       if Dll.mem t.free4k i || Dll.mem t.free2m i || Dll.mem t.free1g i then
         fail "live frame %d on a free list" i;
       if i mod frames_per m.size <> 0 then
         fail "head frame %d misaligned for size %a" i pp_size m.size;
       (match m.state with
        | Mapped n when n <= 0 -> fail "mapped frame %d has refcount %d" i n
        | _ -> ())
     | Merged h ->
       if not (managed t h) then fail "merged frame %d has unmanaged head %d" i h
       else begin
         let hm = t.meta.(h) in
         (match hm.state with
          | Merged _ -> fail "merged frame %d points at merged head %d" i h
          | Free | Allocated | Mapped _ ->
            let span = frames_per hm.size in
            if not (h mod span = 0 && h < i && i < h + span) then
              fail "merged frame %d outside block of head %d (%a)" i h pp_size hm.size)
       end)
  done;
  let* () = !result in
  (* Heads own their bodies: every non-head frame inside a live superpage
     block must be Merged into exactly that head. *)
  let result = ref (Ok ()) in
  for i = t.first to t.nframes - 1 do
    let m = t.meta.(i) in
    match m.state with
    | (Free | Allocated | Mapped _) when m.size <> S4k ->
      let span = frames_per m.size in
      for j = i + 1 to min (i + span) t.nframes - 1 do
        match t.meta.(j).state with
        | Merged h when h = i -> ()
        | st ->
          if !result = Ok () then
            result :=
              Error
                (Format.asprintf "body frame %d of head %d is %a" j i pp_state st)
      done
    | _ -> ()
  done;
  !result
