(** Flat linear permission maps.

    Executable model of the paper's
    [Tracked<Map<Ptr, PointsTo<T>>>] fields: all permissions to the
    objects of one kind live in a single flat map at the top of the
    subsystem.  Verus enforces linearity statically; here the same
    discipline is enforced dynamically — a permission is created exactly
    once per allocation ({!alloc}), must be presented for every access
    ({!borrow} / {!update}), and is consumed exactly once at deallocation
    ({!consume}).  Violations raise {!Permission_violation}, the runtime
    analogue of a Verus type error.

    Stored values are immutable records; updates are functional, echoing
    Verus's setter functions for tracked permissions. *)

exception Permission_violation of string

type 'a t

val create : name:string -> 'a t
val name : 'a t -> string

val alloc : 'a t -> ptr:int -> 'a -> unit
(** Install the permission for a freshly allocated object page.  Raises
    {!Permission_violation} if a permission for [ptr] already exists
    (double allocation). *)

val consume : 'a t -> ptr:int -> 'a
(** Remove and return the permission at deallocation.  Raises if
    absent (double free / use of a dangling pointer). *)

val borrow : 'a t -> ptr:int -> 'a
(** Read access through the permission; raises if absent. *)

val borrow_opt : 'a t -> ptr:int -> 'a option

val update : 'a t -> ptr:int -> ('a -> 'a) -> unit
(** Mutate by functional replacement; raises if absent. *)

val mem : 'a t -> ptr:int -> bool
val dom : 'a t -> Atmo_util.Iset.t
val cardinal : 'a t -> int
val iter : (int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
val for_all : (int -> 'a -> bool) -> 'a t -> bool

val bindings : 'a t -> (int * 'a) list
(** All (pointer, permission) pairs in increasing pointer order; the
    map's ghost-state view for auditors and tests. *)

val set_mutation_hook :
  (name:string -> op:string -> ptr:int -> unit) option -> unit
(** Process-global observer of map mutations ([op] is ["alloc"],
    ["consume"] or ["update"]) used by atmo_san's lock-discipline
    checker; one bool load per mutation when not installed.  Borrows are
    reads and are not reported.  Equivalent to
    {!add_mutation_hook}/{!remove_mutation_hook} under a reserved key —
    kept so existing single-subscriber callers are unchanged. *)

val add_mutation_hook :
  key:string -> (name:string -> op:string -> ptr:int -> unit) -> unit
(** Subscribe under [key]; replaces any previous subscriber with the
    same key.  Multiple analyses (sanitizer, incremental verifier's
    dirty tracker) observe every mutation independently. *)

val remove_mutation_hook : key:string -> unit

val epoch : 'a t -> int
(** Per-instance write epoch: incremented by every mutation attempt
    ([alloc]/[update]/[consume]).  The sequence word of the read-mostly
    regime — a reader that sees the same epoch before and after a
    borrow-only section raced no writer. *)

val read_section : 'a t -> (unit -> 'b) -> 'b
(** Seqlock-style optimistic read section: run [f] (borrows only),
    retry if the epoch moved underneath it (a writer interleaved),
    bounded at 8 retries.  Retries are counted under the
    [pm/read_retries] metric. *)

val mutation_count : name:string -> int
(** Intrinsic mutation count for every map ever created with [name],
    summed over all instances (scratch worlds included).  Always on and
    independent of the hook registry: atmo_san's [stale-proof] lint
    compares it against the dirty tracker's observed count, so a
    mutation that bypassed the tracker is detectable. *)

val accesses : 'a t -> int
(** Deprecated shim: the borrow/update count now lives in the obs
    metrics registry as the counter [pm/borrows/<name>] (zeroed by
    [Atmo_obs.Metrics.reset] like every other metric); this reads the
    same counter.  Prefer the registry. *)
