type t = {
  owner_container : int;
  send_queue : int Static_list.t;
  recv_queue : int Static_list.t;
  refcount : int;
}

let created_ctr = Atmo_obs.Metrics.counter "pm/endpoints_created"

let make ~owner_container =
  if Atmo_obs.Sink.tracing () then begin
    Atmo_obs.Sink.emit_ep_create ~container:owner_container ();
    Atmo_obs.Metrics.Counter.incr created_ctr
  end;
  {
    owner_container;
    send_queue = Static_list.create ~capacity:Kconfig.max_endpoint_queue;
    recv_queue = Static_list.create ~capacity:Kconfig.max_endpoint_queue;
    refcount = 1;
  }

let wf t =
  Static_list.wf t.send_queue
  && Static_list.wf t.recv_queue
  && t.refcount >= 1
  && (Static_list.is_empty t.send_queue || Static_list.is_empty t.recv_queue)

let pp ppf t =
  Format.fprintf ppf "@[<h>endpoint{container=0x%x; senders=%d; receivers=%d; rc=%d}@]"
    t.owner_container
    (Static_list.length t.send_queue)
    (Static_list.length t.recv_queue)
    t.refcount
