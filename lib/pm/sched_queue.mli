(** The scheduler's run queue: an intrusive O(1) deque over thread
    object pages.

    A thread's deque node is its own frame index into the underlying
    {!Atmo_pmem.Dll} prev/next arrays, so enqueue, dequeue and the
    detach of a blocking thread are all constant-time — the former
    [int list] representation paid an O(n) filter on every blocking
    send/receive.  Capacity covers every physical frame, so any thread
    object page is addressable. *)

type t

val create : Atmo_hw.Phys_mem.t -> t
(** One slot per physical frame of the machine. *)

val length : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val push_back : t -> int -> unit
(** Enqueue at the tail.  Raises [Invalid_argument] if the thread is
    already queued or its address is not a page base. *)

val push_front : t -> int -> unit
val pop_front : t -> int option

val pop_back : t -> int option
(** Dequeue from the tail — the thief's end of the work-stealing split:
    owners pop the front, stealing CPUs take the back. *)

val peek_front : t -> int option

val remove : t -> int -> unit
(** O(1) unlink of a queued thread; raises if absent. *)

val remove_if_queued : t -> int -> unit
(** Unlink if queued, no-op otherwise (termination sweeps threads in
    any scheduling state). *)

val iter : t -> (int -> unit) -> unit

val to_list : t -> int list
(** Front-to-back order — the abstraction function to the
    specification's [run_queue : int list]. *)

val wf : t -> (unit, string) result
(** Structural well-formedness of the underlying deque (traversals
    agree, no cycles, membership flags consistent). *)
