open Atmo_util

exception Permission_violation of string

type 'a t = {
  name : string;
  mutable map : 'a Imap.t;
  borrows : Atmo_obs.Metrics.Counter.t;
      (* borrows/updates, under [pm/borrows/<name>] in the obs registry
         so benches and the CLI see them next to every other metric *)
}

let create ~name =
  { name; map = Imap.empty; borrows = Atmo_obs.Metrics.counter ("pm/borrows/" ^ name) }

let name t = t.name

(* Mutation hook for the sanitizer's lock-discipline checker: one bool
   load per mutation when not installed.  Borrows are reads and are not
   reported — the big lock protects mutations of kernel state. *)
let hook_armed = ref false
let hook : (name:string -> op:string -> ptr:int -> unit) ref =
  ref (fun ~name:_ ~op:_ ~ptr:_ -> ())

let set_mutation_hook = function
  | None ->
    hook_armed := false;
    hook := (fun ~name:_ ~op:_ ~ptr:_ -> ())
  | Some f ->
    hook := f;
    hook_armed := true

let violation t fmt =
  Format.kasprintf (fun s -> raise (Permission_violation (t.name ^ ": " ^ s))) fmt

let alloc t ~ptr v =
  if !hook_armed then !hook ~name:t.name ~op:"alloc" ~ptr;
  if Imap.mem ptr t.map then violation t "double allocation at 0x%x" ptr;
  t.map <- Imap.add ptr v t.map

let consume t ~ptr =
  if !hook_armed then !hook ~name:t.name ~op:"consume" ~ptr;
  match Imap.find_opt ptr t.map with
  | None -> violation t "consume of absent permission 0x%x" ptr
  | Some v ->
    t.map <- Imap.remove ptr t.map;
    v

let borrow t ~ptr =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  match Imap.find_opt ptr t.map with
  | None -> violation t "borrow of absent permission 0x%x" ptr
  | Some v -> v

let borrow_opt t ~ptr =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  Imap.find_opt ptr t.map

let update t ~ptr f =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  if !hook_armed then !hook ~name:t.name ~op:"update" ~ptr;
  match Imap.find_opt ptr t.map with
  | None -> violation t "update of absent permission 0x%x" ptr
  | Some v -> t.map <- Imap.add ptr (f v) t.map

let mem t ~ptr = Imap.mem ptr t.map
let dom t = Imap.dom t.map
let cardinal t = Imap.cardinal t.map
let iter f t = Imap.iter f t.map
let fold f t acc = Imap.fold f t.map acc
let bindings t = Imap.bindings t.map
let for_all f t = Imap.for_all f t.map
let accesses t = Atmo_obs.Metrics.Counter.value t.borrows
