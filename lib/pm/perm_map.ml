open Atmo_util

exception Permission_violation of string

type 'a t = {
  name : string;
  mutable map : 'a Imap.t;
  borrows : Atmo_obs.Metrics.Counter.t;
      (* borrows/updates, under [pm/borrows/<name>] in the obs registry
         so benches and the CLI see them next to every other metric *)
  muts : int Atomic.t;  (* intrinsic mutation counter, shared per name *)
  mutable epoch : int;
      (* per-instance write epoch: the seqlock sequence word for the
         read-mostly regime — readers snapshot it around a borrow-only
         section and retry when a writer interleaved *)
}

(* Mutation observers: a keyed registry so independent analyses (the
   sanitizer's lock-discipline checker, the incremental verifier's
   dirty tracker) can subscribe simultaneously; one bool load per
   mutation when nothing is installed.  Borrows are reads and are not
   reported — the big lock protects mutations of kernel state. *)
let hook_armed = ref false
let hooks : (string * (name:string -> op:string -> ptr:int -> unit)) list ref = ref []

let add_mutation_hook ~key f =
  hooks := (key, f) :: List.remove_assoc key !hooks;
  hook_armed := true

let remove_mutation_hook ~key =
  hooks := List.remove_assoc key !hooks;
  hook_armed := !hooks <> []

let legacy = "legacy-single-slot"

let set_mutation_hook = function
  | None -> remove_mutation_hook ~key:legacy
  | Some f -> add_mutation_hook ~key:legacy f

(* Intrinsic per-name mutation counters: always on, shared by every map
   instance with the same [name] (scratch worlds included), and
   independent of any hook — atmo_san's stale-proof lint compares them
   against the dirty tracker's observed counts, so a mutation the
   tracker failed to see is evidence, not something the buggy hook
   path can hide.  Registration is rare (map creation) and guarded by a
   mutex; bumps are atomic so parallel discharge domains stay safe. *)
let counters : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let counters_mu = Mutex.create ()

let counter_for name =
  Mutex.protect counters_mu (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = Atomic.make 0 in
        Hashtbl.add counters name c;
        c)

let mutation_count ~name =
  Mutex.protect counters_mu (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> Atomic.get c
      | None -> 0)

let create ~name =
  {
    name;
    map = Imap.empty;
    borrows = Atmo_obs.Metrics.counter ("pm/borrows/" ^ name);
    muts = counter_for name;
    epoch = 0;
  }

let name t = t.name

(* One intrinsic bump + one dispatch per mutation attempt (before the
   linearity guard, matching the sanitizer's long-standing view that a
   double alloc is still an observable mutation attempt). *)
let note t ~op ~ptr =
  Atomic.incr t.muts;
  t.epoch <- t.epoch + 1;
  if !hook_armed then List.iter (fun (_, f) -> f ~name:t.name ~op ~ptr) !hooks

let epoch t = t.epoch

(* Seqlock-style read section: writers (note) bump the epoch, so a
   reader that observes the same epoch on both sides of its borrows saw
   an unmutated map and needed no lock at all.  The retry bound guards
   against a reader that itself mutates (a protocol violation, reported
   by the caller's lints, not hidden by an infinite loop). *)
let read_retries_ctr = Atmo_obs.Metrics.counter "pm/read_retries"

let read_section t f =
  let max_retries = 8 in
  let rec go n =
    let e0 = t.epoch in
    let r = f () in
    if t.epoch = e0 || n >= max_retries then r
    else begin
      Atmo_obs.Metrics.Counter.incr read_retries_ctr;
      go (n + 1)
    end
  in
  go 0

let violation t fmt =
  Format.kasprintf (fun s -> raise (Permission_violation (t.name ^ ": " ^ s))) fmt

let alloc t ~ptr v =
  note t ~op:"alloc" ~ptr;
  if Imap.mem ptr t.map then violation t "double allocation at 0x%x" ptr;
  t.map <- Imap.add ptr v t.map

let consume t ~ptr =
  note t ~op:"consume" ~ptr;
  match Imap.find_opt ptr t.map with
  | None -> violation t "consume of absent permission 0x%x" ptr
  | Some v ->
    t.map <- Imap.remove ptr t.map;
    v

let borrow t ~ptr =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  match Imap.find_opt ptr t.map with
  | None -> violation t "borrow of absent permission 0x%x" ptr
  | Some v -> v

let borrow_opt t ~ptr =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  Imap.find_opt ptr t.map

let update t ~ptr f =
  Atmo_obs.Metrics.Counter.incr t.borrows;
  note t ~op:"update" ~ptr;
  match Imap.find_opt ptr t.map with
  | None -> violation t "update of absent permission 0x%x" ptr
  | Some v -> t.map <- Imap.add ptr (f v) t.map

let mem t ~ptr = Imap.mem ptr t.map
let dom t = Imap.dom t.map
let cardinal t = Imap.cardinal t.map
let iter f t = Imap.iter f t.map
let fold f t acc = Imap.fold f t.map acc
let bindings t = Imap.bindings t.map
let for_all f t = Imap.for_all f t.map
let accesses t = Atmo_obs.Metrics.Counter.value t.borrows
