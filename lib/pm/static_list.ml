type 'a t = {
  capacity : int;
  items : 'a list;  (* front at head, length <= capacity *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Static_list.create: capacity <= 0";
  { capacity; items = [] }

let capacity t = t.capacity
let length t = List.length t.items
let is_empty t = t.items = []
let is_full t = length t >= t.capacity

let push t x =
  if is_full t then Error `Full else Ok { t with items = t.items @ [ x ] }

let remove t ~eq x =
  let rec go acc = function
    | [] -> Error `Absent
    | y :: rest ->
      if eq x y then Ok { t with items = List.rev_append acc rest }
      else go (y :: acc) rest
  in
  go [] t.items

let pop_front t =
  match t.items with
  | [] -> None
  | x :: rest -> Some (x, { t with items = rest })

let peek_front t = match t.items with [] -> None | x :: _ -> Some x

let mem t ~eq x = List.exists (eq x) t.items
let to_list t = t.items
let iter f t = List.iter f t.items
let exists f t = List.exists f t.items
let for_all f t = List.for_all f t.items
let wf t = t.capacity > 0 && length t <= t.capacity
