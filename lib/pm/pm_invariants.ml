open Atmo_util
module Page_table = Atmo_pt.Page_table

let err fmt = Format.kasprintf (fun s -> Error s) fmt
let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let fold_ok f map =
  Perm_map.fold
    (fun ptr v acc ->
      let* () = acc in
      f ptr v)
    map (Ok ())

let containers_wf (pm : Proc_mgr.t) =
  fold_ok
    (fun ptr c ->
      if Container.wf c then Ok () else err "container 0x%x not wf" ptr)
    pm.Proc_mgr.cntr_perms

(* prefix of length d of a list *)
let rec prefix d = function
  | _ when d = 0 -> []
  | [] -> []
  | x :: rest -> x :: prefix (d - 1) rest

let path_wf (pm : Proc_mgr.t) =
  fold_ok
    (fun ptr (c : Container.t) ->
      let rec at_depth d = function
        | [] -> Ok ()
        | anc :: rest ->
          (match Perm_map.borrow_opt pm.Proc_mgr.cntr_perms ~ptr:anc with
           | None -> err "path of 0x%x names dead container 0x%x" ptr anc
           | Some a ->
             if a.Container.path = prefix d c.Container.path then at_depth (d + 1) rest
             else err "path prefix of 0x%x at depth %d differs from path of 0x%x" ptr d anc)
      in
      at_depth 0 c.Container.path)
    pm.Proc_mgr.cntr_perms

let parent_child_wf (pm : Proc_mgr.t) =
  let cntrs = pm.Proc_mgr.cntr_perms in
  fold_ok
    (fun ptr (c : Container.t) ->
      let* () =
        match c.Container.parent with
        | None ->
          if ptr <> pm.Proc_mgr.root_container then
            err "0x%x has no parent but is not the root" ptr
          else if c.Container.path <> [] then err "root has non-empty path"
          else Ok ()
        | Some parent ->
          (match Perm_map.borrow_opt cntrs ~ptr:parent with
           | None -> err "parent 0x%x of 0x%x is dead" parent ptr
           | Some p ->
             if not (Static_list.mem p.Container.children ~eq:( = ) ptr) then
               err "0x%x missing from children of its parent 0x%x" ptr parent
             else if
               c.Container.path <> []
               && List.nth c.Container.path (c.Container.depth - 1) = parent
             then Ok ()
             else err "last path element of 0x%x is not its parent" ptr)
      in
      (* every listed child acknowledges us *)
      List.fold_left
        (fun acc child ->
          let* () = acc in
          match Perm_map.borrow_opt cntrs ~ptr:child with
          | None -> err "child 0x%x of 0x%x is dead" child ptr
          | Some ch ->
            if ch.Container.parent = Some ptr then Ok ()
            else err "child 0x%x does not point back at 0x%x" child ptr)
        (Ok ())
        (Static_list.to_list c.Container.children))
    cntrs

let subtree_wf (pm : Proc_mgr.t) =
  let cntrs = pm.Proc_mgr.cntr_perms in
  let* () =
    (* direction 1: membership in a subtree implies ancestry via path *)
    fold_ok
      (fun ptr (c : Container.t) ->
        Iset.fold
          (fun d acc ->
            let* () = acc in
            match Perm_map.borrow_opt cntrs ~ptr:d with
            | None -> err "subtree of 0x%x contains dead container 0x%x" ptr d
            | Some dc ->
              if List.mem ptr dc.Container.path then Ok ()
              else err "0x%x in subtree of 0x%x but 0x%x not on its path" d ptr ptr)
          c.Container.subtree (Ok ()))
      cntrs
  in
  (* direction 2: ancestry via path implies subtree membership *)
  fold_ok
    (fun ptr (c : Container.t) ->
      List.fold_left
        (fun acc anc ->
          let* () = acc in
          match Perm_map.borrow_opt cntrs ~ptr:anc with
          | None -> err "path of 0x%x names dead container 0x%x" ptr anc
          | Some a ->
            if Iset.mem ptr a.Container.subtree then Ok ()
            else err "0x%x on path of 0x%x but subtree misses it" anc ptr)
        (Ok ()) c.Container.path)
    pm.Proc_mgr.cntr_perms

let process_tree_wf (pm : Proc_mgr.t) =
  let* () =
    fold_ok
      (fun ptr (p : Process.t) ->
        let* () = if Process.wf p then Ok () else err "process 0x%x not wf" ptr in
        let* () =
          match Perm_map.borrow_opt pm.Proc_mgr.cntr_perms ~ptr:p.Process.owner_container with
          | None -> err "process 0x%x owned by dead container" ptr
          | Some c ->
            if Static_list.mem c.Container.procs ~eq:( = ) ptr then Ok ()
            else err "container 0x%x does not list process 0x%x" p.Process.owner_container ptr
        in
        let* () =
          match p.Process.parent with
          | None -> Ok ()
          | Some parent ->
            (match Perm_map.borrow_opt pm.Proc_mgr.proc_perms ~ptr:parent with
             | None -> err "parent process 0x%x of 0x%x is dead" parent ptr
             | Some pp ->
               if pp.Process.owner_container <> p.Process.owner_container then
                 err "process 0x%x and its parent live in different containers" ptr
               else if Static_list.mem pp.Process.children ~eq:( = ) ptr then Ok ()
               else err "parent 0x%x does not list child process 0x%x" parent ptr)
        in
        let* () =
          List.fold_left
            (fun acc child ->
              let* () = acc in
              match Perm_map.borrow_opt pm.Proc_mgr.proc_perms ~ptr:child with
              | None -> err "child process 0x%x of 0x%x is dead" child ptr
              | Some ch ->
                if ch.Process.parent = Some ptr then Ok ()
                else err "child process 0x%x does not point back at 0x%x" child ptr)
            (Ok ())
            (Static_list.to_list p.Process.children)
        in
        List.fold_left
          (fun acc th ->
            let* () = acc in
            match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:th with
            | None -> err "thread 0x%x of process 0x%x is dead" th ptr
            | Some thread ->
              if thread.Thread.owner_proc = ptr then Ok ()
              else err "thread 0x%x does not point back at process 0x%x" th ptr)
          (Ok ())
          (Static_list.to_list p.Process.threads))
      pm.Proc_mgr.proc_perms
  in
  fold_ok
    (fun ptr (th : Thread.t) ->
      let* () = if Thread.wf th then Ok () else err "thread 0x%x not wf" ptr in
      match Perm_map.borrow_opt pm.Proc_mgr.proc_perms ~ptr:th.Thread.owner_proc with
      | None -> err "thread 0x%x owned by dead process" ptr
      | Some p ->
        if Static_list.mem p.Process.threads ~eq:( = ) ptr then Ok ()
        else err "process 0x%x does not list thread 0x%x" th.Thread.owner_proc ptr)
    pm.Proc_mgr.thrd_perms

let count_in_list x l = List.length (List.filter (fun y -> y = x) l)

let scheduler_wf (pm : Proc_mgr.t) =
  let* () =
    (* every per-CPU deque must be structurally sound before its
       contents mean anything (traversals agree, no cycles) *)
    let n = Proc_mgr.sched_cpus pm in
    let rec check_q c =
      if c >= n then Ok ()
      else
        match Sched_queue.wf (Proc_mgr.queue pm ~cpu:c) with
        | Ok () -> check_q (c + 1)
        | Error msg -> err "cpu %d run queue deque not wf: %s" c msg
    in
    check_q 0
  in
  let queue = Proc_mgr.run_queue_list pm in
  let* () =
    (* the run queue contains only live, runnable threads, each once *)
    List.fold_left
      (fun acc th ->
        let* () = acc in
        match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:th with
        | None -> err "run queue contains dead thread 0x%x" th
        | Some thread ->
          if thread.Thread.state <> Thread.Runnable then
            err "run queue contains non-runnable thread 0x%x" th
          else if count_in_list th queue <> 1 then
            err "thread 0x%x queued more than once" th
          else Ok ())
      (Ok ()) queue
  in
  fold_ok
    (fun ptr (th : Thread.t) ->
      match th.Thread.state with
      | Thread.Runnable ->
        if Proc_mgr.queued_anywhere pm ~thread:ptr then Ok ()
        else err "runnable thread 0x%x missing from every run queue" ptr
      | Thread.Running ->
        if Proc_mgr.cpu_of_current pm ~thread:ptr <> None then Ok ()
        else err "thread 0x%x claims Running but is current on no CPU" ptr
      | Thread.Blocked_send e ->
        (match Perm_map.borrow_opt pm.Proc_mgr.edpt_perms ~ptr:e with
         | None -> err "thread 0x%x blocked sending on dead endpoint 0x%x" ptr e
         | Some ep ->
           if Static_list.mem ep.Endpoint.send_queue ~eq:( = ) ptr then Ok ()
           else err "thread 0x%x not on send queue of 0x%x" ptr e)
      | Thread.Blocked_recv e ->
        (match Perm_map.borrow_opt pm.Proc_mgr.edpt_perms ~ptr:e with
         | None -> err "thread 0x%x blocked receiving on dead endpoint 0x%x" ptr e
         | Some ep ->
           if Static_list.mem ep.Endpoint.recv_queue ~eq:( = ) ptr then Ok ()
           else err "thread 0x%x not on recv queue of 0x%x" ptr e))
    pm.Proc_mgr.thrd_perms

let endpoints_wf (pm : Proc_mgr.t) =
  (* count references from descriptor tables *)
  let refs = Hashtbl.create 16 in
  Perm_map.iter
    (fun _ th ->
      List.iter
        (fun (_, e) ->
          Hashtbl.replace refs e (1 + Option.value ~default:0 (Hashtbl.find_opt refs e)))
        (Thread.slots th))
    pm.Proc_mgr.thrd_perms;
  let* () =
    (* every slot names a live endpoint *)
    fold_ok
      (fun ptr th ->
        List.fold_left
          (fun acc (i, e) ->
            let* () = acc in
            if Perm_map.mem pm.Proc_mgr.edpt_perms ~ptr:e then Ok ()
            else err "slot %d of thread 0x%x names dead endpoint 0x%x" i ptr e)
          (Ok ()) (Thread.slots th))
      pm.Proc_mgr.thrd_perms
  in
  fold_ok
    (fun ptr (e : Endpoint.t) ->
      let* () = if Endpoint.wf e then Ok () else err "endpoint 0x%x not wf" ptr in
      let expected = Option.value ~default:0 (Hashtbl.find_opt refs ptr) in
      let* () =
        if e.Endpoint.refcount = expected then Ok ()
        else err "endpoint 0x%x refcount %d but %d slots name it" ptr e.Endpoint.refcount expected
      in
      let* () =
        match Perm_map.borrow_opt pm.Proc_mgr.cntr_perms ~ptr:e.Endpoint.owner_container with
        | None -> err "endpoint 0x%x owned by dead container" ptr
        | Some _ -> Ok ()
      in
      let queue_ok which q blocked_on =
        List.fold_left
          (fun acc th ->
            let* () = acc in
            match Perm_map.borrow_opt pm.Proc_mgr.thrd_perms ~ptr:th with
            | None -> err "%s queue of 0x%x holds dead thread 0x%x" which ptr th
            | Some thread ->
              if Thread.equal_sched_state thread.Thread.state (blocked_on ptr) then Ok ()
              else err "%s queue of 0x%x holds thread 0x%x in state %a" which ptr th
                  Thread.pp_sched_state thread.Thread.state)
          (Ok ()) (Static_list.to_list q)
      in
      let* () =
        queue_ok "send" e.Endpoint.send_queue (fun p -> Thread.Blocked_send p)
      in
      queue_ok "recv" e.Endpoint.recv_queue (fun p -> Thread.Blocked_recv p))
    pm.Proc_mgr.edpt_perms

let quota_wf (pm : Proc_mgr.t) =
  fold_ok
    (fun ptr (c : Container.t) ->
      let real = Proc_mgr.used_by_container pm ~container:ptr in
      let* () =
        if c.Container.used = real then Ok ()
        else err "container 0x%x charges used=%d but owns %d pages" ptr c.Container.used real
      in
      let delegated =
        List.fold_left
          (fun acc child ->
            acc + (Perm_map.borrow pm.Proc_mgr.cntr_perms ~ptr:child).Container.quota)
          0
          (Static_list.to_list c.Container.children)
      in
      if c.Container.delegated = delegated then Ok ()
      else
        err "container 0x%x delegated=%d but children hold %d" ptr c.Container.delegated
          delegated)
    pm.Proc_mgr.cntr_perms

let obligations =
  [
    ("pm/containers_wf", containers_wf);
    ("pm/path_wf", path_wf);
    ("pm/parent_child_wf", parent_child_wf);
    ("pm/subtree_wf", subtree_wf);
    ("pm/process_tree_wf", process_tree_wf);
    ("pm/scheduler_wf", scheduler_wf);
    ("pm/endpoints_wf", endpoints_wf);
    ("pm/quota_wf", quota_wf);
  ]

let all pm =
  List.fold_left
    (fun acc (_, check) ->
      let* () = acc in
      check pm)
    (Ok ()) obligations
