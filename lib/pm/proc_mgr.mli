(** The process manager: flat permission storage for every kernel object.

    Mirrors the paper's [ProcessManager] (Listing 2): permissions to all
    containers, processes, threads and endpoints live here in flat
    {!Perm_map}s, giving specifications and invariants a global,
    non-recursive view of every recursive structure (container tree,
    per-container process trees, endpoint queues).

    The record fields are public: system-call code in [atmo_core] borrows
    and updates objects through the permission maps exactly as the
    paper's syscall implementations do ([Ψ.process_manager.thrd_perms
    .tracked_borrow(...)]).  All structural updates that must keep the
    ghost [path]/[subtree] fields consistent go through the functions
    below. *)

type t = {
  mem : Atmo_hw.Phys_mem.t;
  alloc : Atmo_pmem.Page_alloc.t;
  root_container : int;
  cntr_perms : Container.t Perm_map.t;
  proc_perms : Process.t Perm_map.t;
  thrd_perms : Thread.t Perm_map.t;
  edpt_perms : Endpoint.t Perm_map.t;
  external_used : (int, int) Hashtbl.t;
      (** container -> frames charged by kernel-level subsystems *)
  run_queue : Sched_queue.t;
      (** runnable threads, FIFO order; intrusive O(1) deque *)
  mutable current : int option;  (** thread on the (modelled) CPU *)
}

val create :
  Atmo_hw.Phys_mem.t ->
  Atmo_pmem.Page_alloc.t ->
  root_quota:int ->
  cpus:Atmo_util.Iset.t ->
  (t, Atmo_util.Errno.t) result
(** Allocate the root container.  [root_quota] bounds every allocation in
    the system and must not exceed the allocator's managed frames. *)

(** {2 Quota accounting} *)

val charge : t -> container:int -> frames:int -> (unit, Atmo_util.Errno.t) result
(** Charge frames against a container's quota ([Equota] when it does not
    fit).  Every page that enters a container's page closure — object
    pages, page-table pages, mapped user frames — is charged here. *)

val uncharge : t -> container:int -> frames:int -> unit

val charge_external : t -> container:int -> frames:int -> (unit, Atmo_util.Errno.t) result
(** Like {!charge}, for pages owned by kernel-level subsystems outside
    the process manager (the IOMMU page tables of §4.2's virtual-memory
    subsystem).  Tracked separately so [used_by_container]'s ground
    truth can account for them. *)

val uncharge_external : t -> container:int -> frames:int -> unit
val drop_external : t -> container:int -> unit
(** Forget external charges of a container that no longer exists. *)

val external_of : t -> container:int -> int

(** {2 Object lifecycle} *)

val new_container :
  t -> parent:int -> quota:int -> cpus:Atmo_util.Iset.t -> (int, Atmo_util.Errno.t) result
(** Create a child container, delegating [quota] frames from the parent.
    The child's own object page is charged to the child.  Updates the
    ghost [path]/[subtree] of every ancestor through the flat map. *)

val new_process : t -> container:int -> parent:int option -> (int, Atmo_util.Errno.t) result
(** Create a process (allocates its object page and a fresh page table,
    both charged to the container). *)

val new_thread : t -> proc:int -> (int, Atmo_util.Errno.t) result
(** Create a runnable thread and enqueue it. *)

val new_endpoint : t -> thread:int -> slot:int -> (int, Atmo_util.Errno.t) result
(** Create an endpoint and install it in a free descriptor slot of
    [thread]. *)

val close_endpoint_slot : t -> thread:int -> slot:int -> (unit, Atmo_util.Errno.t) result
(** Drop the descriptor; frees the endpoint page when the last reference
    disappears ([Ebusy] if threads are still blocked on it). *)

val terminate_process : t -> proc:int -> (unit, Atmo_util.Errno.t) result
(** Terminate a process and (recursively, via the process tree) all its
    descendants: threads leave queues, endpoint references drop, the
    address space is torn down, every page returns to the allocator and
    the quota charges to the container. *)

val terminate_container : t -> container:int -> (unit, Atmo_util.Errno.t) result
(** Terminate a container subtree and harvest its resources into the
    parent (the paper's coarse-grained revocation): all delegated quota
    returns; endpoints that outlive the subtree (still referenced from
    outside) are re-owned by the parent. The root cannot be terminated. *)

(** {2 Scheduler} *)

val enqueue_runnable : t -> thread:int -> unit
(** Mark a thread runnable and append it to the run queue. *)

val dequeue_next : t -> int option
(** Pop the next runnable thread and mark it [Running], updating
    [current].  [None] leaves the CPU idle. *)

val preempt_current : t -> unit
(** Move the running thread (if any) to the back of the run queue. *)

val run_queue_list : t -> int list
(** The run queue as a front-to-back list — the abstraction function
    for specs, invariants and tests (allocates; not for hot paths). *)

(** {2 Views} *)

val container_of_proc : t -> proc:int -> int
val container_of_thread : t -> thread:int -> int

val subtree_containers : t -> container:int -> Atmo_util.Iset.t
(** The container and all its descendants (uses the ghost subtree). *)

val procs_of_subtree : t -> container:int -> Atmo_util.Iset.t
val threads_of_subtree : t -> container:int -> Atmo_util.Iset.t

val object_pages : t -> Atmo_util.Iset.t
(** Pages holding kernel objects: the union of the four permission-map
    domains. *)

val page_closure : t -> Atmo_util.Iset.t
(** The process manager's page closure: object pages plus the page-table
    closures of every process (§4.2's bottom-up memory reasoning). *)

val used_by_container : t -> container:int -> int
(** Recompute a container's real page consumption from the ground truth
    (object pages + page-table pages + mapped frames); invariants compare
    this against the [used] field. *)
