(** The process manager: flat permission storage for every kernel object.

    Mirrors the paper's [ProcessManager] (Listing 2): permissions to all
    containers, processes, threads and endpoints live here in flat
    {!Perm_map}s, giving specifications and invariants a global,
    non-recursive view of every recursive structure (container tree,
    per-container process trees, endpoint queues).

    The record fields are public: system-call code in [atmo_core] borrows
    and updates objects through the permission maps exactly as the
    paper's syscall implementations do ([Ψ.process_manager.thrd_perms
    .tracked_borrow(...)]).  All structural updates that must keep the
    ghost [path]/[subtree] fields consistent go through the functions
    below. *)

type t = {
  mem : Atmo_hw.Phys_mem.t;
  alloc : Atmo_pmem.Page_alloc.t;
  root_container : int;
  cntr_perms : Container.t Perm_map.t;
  proc_perms : Process.t Perm_map.t;
  thrd_perms : Thread.t Perm_map.t;
  edpt_perms : Endpoint.t Perm_map.t;
  external_used : (int, int) Hashtbl.t;
      (** container -> frames charged by kernel-level subsystems *)
  mutable queues : Sched_queue.t array;
      (** per-CPU run queues, FIFO per queue; intrusive O(1) deques.
          Length 1 (the former single big-lock queue) until
          {!set_sched_cpus} grows the topology. *)
  mutable currents : int option array;  (** per-CPU running thread *)
  mutable cur_cpu : int;
      (** the CPU executing kernel code right now (set by the SMP
          simulator before each [Kernel.step]; 0 outside it) *)
  home_cpu : (int, int) Hashtbl.t;
      (** thread -> home CPU; wakeups enqueue there (0 when unset) *)
  mutable steal_state : int;  (** xorshift state for victim selection *)
  mutable steal_ledger : (int * int * int) list;
      (** recent steals, newest first: (thief, victim, thread).
          Scrubbed when the thread dies — a surviving entry naming a
          dead thread is the steal-vs-terminate race. *)
  mutable lost_steal_plant : bool;
      (** atmo-san plant: skip the ledger scrub on thread destruction *)
}

val create :
  Atmo_hw.Phys_mem.t ->
  Atmo_pmem.Page_alloc.t ->
  root_quota:int ->
  cpus:Atmo_util.Iset.t ->
  (t, Atmo_util.Errno.t) result
(** Allocate the root container.  [root_quota] bounds every allocation in
    the system and must not exceed the allocator's managed frames. *)

(** {2 Quota accounting} *)

val charge : t -> container:int -> frames:int -> (unit, Atmo_util.Errno.t) result
(** Charge frames against a container's quota ([Equota] when it does not
    fit).  Every page that enters a container's page closure — object
    pages, page-table pages, mapped user frames — is charged here. *)

val uncharge : t -> container:int -> frames:int -> unit

val charge_external : t -> container:int -> frames:int -> (unit, Atmo_util.Errno.t) result
(** Like {!charge}, for pages owned by kernel-level subsystems outside
    the process manager (the IOMMU page tables of §4.2's virtual-memory
    subsystem).  Tracked separately so [used_by_container]'s ground
    truth can account for them. *)

val uncharge_external : t -> container:int -> frames:int -> unit
val drop_external : t -> container:int -> unit
(** Forget external charges of a container that no longer exists. *)

val external_of : t -> container:int -> int

(** {2 Object lifecycle} *)

val new_container :
  t -> parent:int -> quota:int -> cpus:Atmo_util.Iset.t -> (int, Atmo_util.Errno.t) result
(** Create a child container, delegating [quota] frames from the parent.
    The child's own object page is charged to the child.  Updates the
    ghost [path]/[subtree] of every ancestor through the flat map. *)

val new_process : t -> container:int -> parent:int option -> (int, Atmo_util.Errno.t) result
(** Create a process (allocates its object page and a fresh page table,
    both charged to the container). *)

val new_thread : t -> proc:int -> (int, Atmo_util.Errno.t) result
(** Create a runnable thread and enqueue it. *)

val new_endpoint : t -> thread:int -> slot:int -> (int, Atmo_util.Errno.t) result
(** Create an endpoint and install it in a free descriptor slot of
    [thread]. *)

val close_endpoint_slot : t -> thread:int -> slot:int -> (unit, Atmo_util.Errno.t) result
(** Drop the descriptor; frees the endpoint page when the last reference
    disappears ([Ebusy] if threads are still blocked on it). *)

val terminate_process : t -> proc:int -> (unit, Atmo_util.Errno.t) result
(** Terminate a process and (recursively, via the process tree) all its
    descendants: threads leave queues, endpoint references drop, the
    address space is torn down, every page returns to the allocator and
    the quota charges to the container. *)

val remove_from_run_queue : t -> thread:int -> unit
(** Unlink a thread from every per-CPU queue and clear any [currents]
    slot naming it. *)

val destroy_thread : t -> thread:int -> unit
(** Destroy one thread: leave the scheduler and wait queues, scrub the
    steal ledger, drop endpoint references, free the object page.
    Exposed for termination paths and sanitizer harnesses. *)

val terminate_container : t -> container:int -> (unit, Atmo_util.Errno.t) result
(** Terminate a container subtree and harvest its resources into the
    parent (the paper's coarse-grained revocation): all delegated quota
    returns; endpoints that outlive the subtree (still referenced from
    outside) are re-owned by the parent. The root cannot be terminated. *)

(** {2 Scheduler}

    One {!Sched_queue} per CPU.  The default topology is a single CPU,
    bit-identical to the former global run queue; the SMP simulator
    grows it with {!set_sched_cpus} and steers each kernel entry with
    {!set_cpu}.  An idle CPU whose own queue is empty steals from the
    back of a randomized victim's queue (never its own). *)

val sched_cpus : t -> int
(** Number of per-CPU run queues (>= 1). *)

val set_sched_cpus : t -> int -> unit
(** Resize the topology.  Queued threads are redistributed to their
    home queues deterministically; threads current on removed CPUs are
    requeued. *)

val cpu : t -> int
val set_cpu : t -> int -> unit
(** The CPU executing kernel code; raises on out-of-range. *)

val home_of : t -> thread:int -> int
val set_home : t -> thread:int -> cpu:int -> unit
(** A thread's home CPU: wakeups enqueue there.  Stolen threads
    migrate (their home follows the thief). *)

val set_steal_seed : t -> int -> unit
(** Seed the victim-selection xorshift (0 resets to the default). *)

val queue : t -> cpu:int -> Sched_queue.t
val cur_queue : t -> Sched_queue.t
(** The executing CPU's run queue. *)

val current : t -> int option
(** The thread running on the executing CPU. *)

val set_current : t -> int option -> unit
val current_of : t -> cpu:int -> int option
val currents_list : t -> int option list
(** Per-CPU running threads in CPU order — the per-CPU scheduling
    decision vector the on/off oracle compares. *)

val cpu_of_current : t -> thread:int -> int option
(** The CPU a thread is current on, if any. *)

val queued_anywhere : t -> thread:int -> bool

val enqueue_runnable : t -> thread:int -> unit
(** Mark a thread runnable and append it to its home CPU's queue. *)

val push_ready : t -> thread:int -> unit
(** Queue push without the state write (the IPC fastpath writes the
    thread record itself, exactly once). *)

val dequeue_next : t -> int option
(** Pop the executing CPU's next runnable thread and mark it
    [Running]; an empty queue tries to steal before going idle. *)

val dequeue_next_on : t -> cpu:int -> int option

val preempt_current : t -> unit
(** Move the executing CPU's running thread (if any) to the back of
    its home queue. *)

val preempt_on : t -> cpu:int -> unit

val run_queue_list : t -> int list
(** All queued threads, CPU 0's queue front-to-back first — the
    abstraction function for specs, invariants and tests (allocates;
    not for hot paths).  With one CPU this is exactly the old global
    run-queue list. *)

val queue_lists : t -> int list array
(** Per-CPU queue contents, for the census lint and oracle digests. *)

val steal_ledger : t -> (int * int * int) list
(** Recent (thief, victim, thread) steals, newest first. *)

val set_lost_steal_plant : t -> bool -> unit
(** atmo-san plant: make thread destruction skip the ledger scrub,
    modelling a terminate racing an in-flight steal. *)

(** {2 Views} *)

val container_of_proc : t -> proc:int -> int
val container_of_thread : t -> thread:int -> int

val subtree_containers : t -> container:int -> Atmo_util.Iset.t
(** The container and all its descendants (uses the ghost subtree). *)

val procs_of_subtree : t -> container:int -> Atmo_util.Iset.t
val threads_of_subtree : t -> container:int -> Atmo_util.Iset.t

val object_pages : t -> Atmo_util.Iset.t
(** Pages holding kernel objects: the union of the four permission-map
    domains. *)

val page_closure : t -> Atmo_util.Iset.t
(** The process manager's page closure: object pages plus the page-table
    closures of every process (§4.2's bottom-up memory reasoning). *)

val used_by_container : t -> container:int -> int
(** Recompute a container's real page consumption from the ground truth
    (object pages + page-table pages + mapped frames); invariants compare
    this against the [used] field. *)
