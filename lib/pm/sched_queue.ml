(* The scheduler's run queue as an intrusive O(1) deque.

   Thread identifiers are the addresses of their object pages, so each
   thread's "list node" is its frame index into the {!Atmo_pmem.Dll}
   prev/next arrays — the same mechanism the paper's allocator uses for
   its free lists, with the same O(1) unlink.  This replaces the former
   [int list] representation, whose detach path filtered the whole queue
   on every blocking send/receive. *)

module Dll = Atmo_pmem.Dll
module Phys_mem = Atmo_hw.Phys_mem

type t = Dll.t

let create mem =
  Dll.create ~capacity:(Phys_mem.page_count mem) ~name:"run_queue"

let id_of thread =
  if thread land (Phys_mem.page_size - 1) <> 0 then
    invalid_arg "Sched_queue: thread id is not page-aligned";
  thread / Phys_mem.page_size

let thread_of id = id * Phys_mem.page_size

let length = Dll.length
let is_empty = Dll.is_empty
let mem t thread = Dll.mem t (id_of thread)
let push_back t thread = Dll.push_back t (id_of thread)
let push_front t thread = Dll.push_front t (id_of thread)
let pop_front t = Option.map thread_of (Dll.pop_front t)
let pop_back t = Option.map thread_of (Dll.pop_back t)
let peek_front t = Option.map thread_of (Dll.peek_front t)
let remove t thread = Dll.remove t (id_of thread)

(* Filter semantics of the old list representation: removing an absent
   thread is a no-op (termination paths sweep threads that may or may
   not be queued). *)
let remove_if_queued t thread =
  let id = id_of thread in
  if Dll.mem t id then Dll.remove t id

let iter t f = Dll.iter t (fun id -> f (thread_of id))
let to_list t = List.map thread_of (Dll.to_list t)
let wf = Dll.wf
