let max_children = 64
let max_procs_per_container = 64
let max_threads_per_proc = 64
let max_endpoint_slots = 16
let max_endpoint_queue = 64
let max_ipc_scalars = 8
let endpoint_lock_shards = 8
let max_sched_cpus = 8
