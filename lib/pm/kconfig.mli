(** Static kernel configuration.

    Capacities of the fixed-size lists embedded in kernel object pages.
    Like the paper's kernel, every object occupies exactly one 4 KiB
    frame, so embedded lists are statically bounded. *)

val max_children : int
(** Direct child containers per container. *)

val max_procs_per_container : int
val max_threads_per_proc : int
val max_endpoint_slots : int
(** Endpoint descriptor slots per thread (index range of [EdptIdx]). *)

val max_endpoint_queue : int
(** Threads that can block on one endpoint. *)

val max_ipc_scalars : int
(** Scalar payload words per IPC message. *)

val endpoint_lock_shards : int
(** Sharded endpoint-lock count of the fine-grained regime: IPC
    rendezvous on endpoint [e] serializes on shard
    [(e / page_size) mod endpoint_lock_shards]. *)

val max_sched_cpus : int
(** Upper bound on per-CPU run-queue topologies (the scaling curve's
    1→8 range). *)
