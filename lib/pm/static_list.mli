(** Bounded lists — the paper's [StaticList<T>].

    Kernel objects embed fixed-capacity lists (children of a container,
    threads of a process, endpoint wait queues) because kernel memory is
    statically budgeted per object page.  Exceeding capacity is a normal
    runtime condition surfaced to the caller, not a programming error. *)

type 'a t

val create : capacity:int -> 'a t
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool
val is_full : 'a t -> bool

val push : 'a t -> 'a -> ('a t, [ `Full ]) result
(** Append; fails when at capacity. *)

val remove : 'a t -> eq:('a -> 'a -> bool) -> 'a -> ('a t, [ `Absent ]) result
(** Remove the first element equal to the argument. *)

val pop_front : 'a t -> ('a * 'a t) option

val peek_front : 'a t -> 'a option
(** Head without removal, in O(1) and without materialising the whole
    list — the IPC paths peek wait queues on every call. *)

val mem : 'a t -> eq:('a -> 'a -> bool) -> 'a -> bool
val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

val wf : 'a t -> bool
(** Length within capacity — the structural invariant. *)
