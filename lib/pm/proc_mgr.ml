open Atmo_util
module Phys_mem = Atmo_hw.Phys_mem
module Page_alloc = Atmo_pmem.Page_alloc
module Page_table = Atmo_pt.Page_table

type t = {
  mem : Phys_mem.t;
  alloc : Page_alloc.t;
  root_container : int;
  cntr_perms : Container.t Perm_map.t;
  proc_perms : Process.t Perm_map.t;
  thrd_perms : Thread.t Perm_map.t;
  edpt_perms : Endpoint.t Perm_map.t;
  external_used : (int, int) Hashtbl.t;
  mutable queues : Sched_queue.t array;
  mutable currents : int option array;
  mutable cur_cpu : int;
  home_cpu : (int, int) Hashtbl.t;
  mutable steal_state : int;
  mutable steal_ledger : (int * int * int) list;
  mutable lost_steal_plant : bool;
}

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e
let eq_int (a : int) b = a = b

let create mem alloc ~root_quota ~cpus =
  if root_quota <= 0 || root_quota > Page_alloc.managed_frames alloc then
    Error Errno.Einval
  else
    match Page_alloc.alloc_4k alloc ~purpose:Page_alloc.Kernel with
    | None -> Error Errno.Enomem
    | Some root ->
      let cntr_perms = Perm_map.create ~name:"cntr_perms" in
      let c = Container.make ~parent:None ~quota:root_quota ~cpus ~depth:0 ~path:[] in
      Perm_map.alloc cntr_perms ~ptr:root { c with Container.used = 1 };
      Ok
        {
          mem;
          alloc;
          root_container = root;
          cntr_perms;
          proc_perms = Perm_map.create ~name:"proc_perms";
          thrd_perms = Perm_map.create ~name:"thrd_perms";
          edpt_perms = Perm_map.create ~name:"edpt_perms";
          external_used = Hashtbl.create 8;
          queues = [| Sched_queue.create mem |];
          currents = [| None |];
          cur_cpu = 0;
          home_cpu = Hashtbl.create 8;
          steal_state = 0x9e3779b9;
          steal_ledger = [];
          lost_steal_plant = false;
        }

(* ------------------------------------------------------------------ *)
(* Quota accounting                                                    *)

let charge t ~container ~frames =
  let c = Perm_map.borrow t.cntr_perms ~ptr:container in
  if Container.available c < frames then Error Errno.Equota
  else begin
    Perm_map.update t.cntr_perms ~ptr:container (fun c ->
        { c with Container.used = c.Container.used + frames });
    Ok ()
  end

let uncharge t ~container ~frames =
  Perm_map.update t.cntr_perms ~ptr:container (fun c ->
      if c.Container.used < frames then
        invalid_arg "Proc_mgr.uncharge: below zero"
      else { c with Container.used = c.Container.used - frames })

let external_of t ~container =
  Option.value ~default:0 (Hashtbl.find_opt t.external_used container)

let charge_external t ~container ~frames =
  match charge t ~container ~frames with
  | Error _ as e -> e
  | Ok () ->
    Hashtbl.replace t.external_used container (external_of t ~container + frames);
    Ok ()

let uncharge_external t ~container ~frames =
  let current = external_of t ~container in
  if current < frames then invalid_arg "Proc_mgr.uncharge_external: below zero";
  Hashtbl.replace t.external_used container (current - frames);
  uncharge t ~container ~frames

let drop_external t ~container = Hashtbl.remove t.external_used container

(* Allocate one object page charged to [container].  The quota check
   precedes the allocation so a refused charge never leaks a frame. *)
let alloc_object_page t ~container =
  let c = Perm_map.borrow t.cntr_perms ~ptr:container in
  if Container.available c < 1 then Error Errno.Equota
  else
    match Page_alloc.alloc_4k t.alloc ~purpose:Page_alloc.Kernel with
    | None -> Error Errno.Enomem
    | Some page ->
      Perm_map.update t.cntr_perms ~ptr:container (fun c ->
          { c with Container.used = c.Container.used + 1 });
      Ok page

let free_object_page t ~container ~page =
  Page_alloc.free_kernel_page t.alloc ~addr:page;
  uncharge t ~container ~frames:1

(* ------------------------------------------------------------------ *)
(* Containers                                                          *)

let new_container t ~parent ~quota ~cpus =
  match Perm_map.borrow_opt t.cntr_perms ~ptr:parent with
  | None -> Error Errno.Esrch
  | Some p ->
    if quota < 1 then Error Errno.Einval
    else if not (Iset.subset cpus p.Container.cpus) then Error Errno.Eperm
    else if Container.available p < quota then Error Errno.Equota
    else if Static_list.is_full p.Container.children then Error Errno.Efull
    else begin
      (* The child's own object page comes out of the child's quota, so
         the child needs the frame available immediately; the frame
         itself is drawn from the global allocator. *)
      match Page_alloc.alloc_4k t.alloc ~purpose:Page_alloc.Kernel with
      | None -> Error Errno.Enomem
      | Some child ->
        let path = p.Container.path @ [ parent ] in
        let c =
          Container.make ~parent:(Some parent) ~quota ~cpus
            ~depth:(p.Container.depth + 1) ~path
        in
        Perm_map.alloc t.cntr_perms ~ptr:child { c with Container.used = 1 };
        Perm_map.update t.cntr_perms ~ptr:parent (fun p ->
            match Static_list.push p.Container.children child with
            | Error `Full -> assert false (* checked above *)
            | Ok children ->
              {
                p with
                Container.children;
                Container.delegated = p.Container.delegated + quota;
              });
        (* Extend the ghost subtree of every ancestor — a flat walk over
           the path, no recursion. *)
        List.iter
          (fun anc ->
            Perm_map.update t.cntr_perms ~ptr:anc (fun a ->
                { a with Container.subtree = Iset.add child a.Container.subtree }))
          path;
        Ok child
    end

(* ------------------------------------------------------------------ *)
(* Processes and threads                                               *)

let new_process t ~container ~parent =
  match Perm_map.borrow_opt t.cntr_perms ~ptr:container with
  | None -> Error Errno.Esrch
  | Some c ->
    let* () =
      match parent with
      | None -> Ok ()
      | Some pp ->
        (match Perm_map.borrow_opt t.proc_perms ~ptr:pp with
         | None -> Error Errno.Esrch
         | Some parent_proc ->
           if parent_proc.Process.owner_container <> container then Error Errno.Eperm
           else if Static_list.is_full parent_proc.Process.children then
             Error Errno.Efull
           else Ok ())
    in
    if Static_list.is_full c.Container.procs then Error Errno.Efull
    else
      (* One page for the process object plus one for the page-table
         root: both must fit the quota before anything is allocated. *)
      let* () =
        if Container.available c < 2 then Error Errno.Equota else Ok ()
      in
      let* page =
        match Page_alloc.alloc_4k t.alloc ~purpose:Page_alloc.Kernel with
        | None -> Error Errno.Enomem
        | Some p -> Ok p
      in
      (match Page_table.create t.mem t.alloc with
       | Error _ ->
         Page_alloc.free_kernel_page t.alloc ~addr:page;
         Error Errno.Enomem
       | Ok pt ->
         Perm_map.update t.cntr_perms ~ptr:container (fun c ->
             { c with Container.used = c.Container.used + 2 });
         Perm_map.alloc t.proc_perms ~ptr:page
           (Process.make ~owner_container:container ~parent ~pt);
         Perm_map.update t.cntr_perms ~ptr:container (fun c ->
             match Static_list.push c.Container.procs page with
             | Error `Full -> assert false
             | Ok procs -> { c with Container.procs = procs });
         (match parent with
          | None -> ()
          | Some pp ->
            Perm_map.update t.proc_perms ~ptr:pp (fun parent_proc ->
                match Static_list.push parent_proc.Process.children page with
                | Error `Full -> assert false
                | Ok children -> { parent_proc with Process.children = children }));
         Ok page)

(* ------------------------------------------------------------------ *)
(* CPU topology: per-CPU run queues, home CPUs, the stealing RNG        *)

let sched_cpus t = Array.length t.queues
let cpu t = t.cur_cpu

let set_cpu t cpu =
  if cpu < 0 || cpu >= sched_cpus t then invalid_arg "Proc_mgr.set_cpu: out of range";
  t.cur_cpu <- cpu

let home_of t ~thread =
  match Hashtbl.find_opt t.home_cpu thread with
  | Some c when c < sched_cpus t -> c
  | Some _ | None -> 0

let set_home t ~thread ~cpu =
  if cpu < 0 || cpu >= sched_cpus t then invalid_arg "Proc_mgr.set_home: out of range";
  Hashtbl.replace t.home_cpu thread cpu

let set_steal_seed t seed = t.steal_state <- if seed = 0 then 0x9e3779b9 else seed

(* Resize to [n] per-CPU queues.  Queued threads are redistributed to
   their home queues in (cpu, FIFO) order so the move is deterministic;
   a thread current on a CPU that disappears goes back to its home
   queue.  With n = 1 this is exactly the former single-queue world. *)
let set_sched_cpus t n =
  if n <= 0 then invalid_arg "Proc_mgr.set_sched_cpus: cpus <= 0";
  let old_currents = t.currents in
  let queued = Array.to_list t.queues |> List.concat_map Sched_queue.to_list in
  let displaced =
    Array.to_list old_currents
    |> List.filteri (fun i _ -> i >= n)
    |> List.filter_map Fun.id
  in
  t.queues <- Array.init n (fun _ -> Sched_queue.create t.mem);
  t.currents <-
    Array.init n (fun i ->
        if i < Array.length old_currents then old_currents.(i) else None);
  if t.cur_cpu >= n then t.cur_cpu <- 0;
  List.iter
    (fun th -> Sched_queue.push_back t.queues.(home_of t ~thread:th) th)
    queued;
  List.iter
    (fun th ->
      Perm_map.update t.thrd_perms ~ptr:th (fun thread ->
          { thread with Thread.state = Thread.Runnable });
      Sched_queue.push_back t.queues.(home_of t ~thread:th) th)
    displaced

let queue t ~cpu =
  if cpu < 0 || cpu >= sched_cpus t then invalid_arg "Proc_mgr.queue: out of range";
  t.queues.(cpu)

let cur_queue t = t.queues.(t.cur_cpu)
let current_of t ~cpu = t.currents.(cpu)
let currents_list t = Array.to_list t.currents
let current t = t.currents.(t.cur_cpu)
let set_current t v = t.currents.(t.cur_cpu) <- v

let cpu_of_current t ~thread =
  let n = sched_cpus t in
  let rec go i =
    if i >= n then None
    else if t.currents.(i) = Some thread then Some i
    else go (i + 1)
  in
  go 0

let queued_anywhere t ~thread =
  Array.exists (fun q -> Sched_queue.mem q thread) t.queues

(* xorshift: deterministic victim selection, seeded per run *)
let steal_rand t =
  let x = t.steal_state in
  let x = x lxor (x lsl 13) land 0x3FFFFFFF in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0x3FFFFFFF in
  t.steal_state <- x;
  x

let steal_ledger t = t.steal_ledger
let set_lost_steal_plant t b = t.lost_steal_plant <- b

let ledger_cap = 64

let note_steal t ~thief ~victim ~thread =
  let keep =
    if List.length t.steal_ledger >= ledger_cap then
      List.filteri (fun i _ -> i < ledger_cap - 1) t.steal_ledger
    else t.steal_ledger
  in
  t.steal_ledger <- (thief, victim, thread) :: keep

let scrub_steal_ledger t ~thread =
  if not t.lost_steal_plant then
    t.steal_ledger <-
      List.filter (fun (_, _, th) -> th <> thread) t.steal_ledger

let enqueue_runnable t ~thread =
  Perm_map.update t.thrd_perms ~ptr:thread (fun th ->
      { th with Thread.state = Thread.Runnable });
  Sched_queue.push_back t.queues.(home_of t ~thread) thread

(* Requeue without the state write: the fastpath updates the thread
   record itself, exactly once, and only needs the queue push. *)
let push_ready t ~thread = Sched_queue.push_back t.queues.(home_of t ~thread) thread

let new_thread t ~proc =
  match Perm_map.borrow_opt t.proc_perms ~ptr:proc with
  | None -> Error Errno.Esrch
  | Some p ->
    if Static_list.is_full p.Process.threads then Error Errno.Efull
    else
      let container = p.Process.owner_container in
      let* page = alloc_object_page t ~container in
      Perm_map.alloc t.thrd_perms ~ptr:page (Thread.make ~owner_proc:proc);
      Perm_map.update t.proc_perms ~ptr:proc (fun p ->
          match Static_list.push p.Process.threads page with
          | Error `Full -> assert false
          | Ok threads -> { p with Process.threads = threads });
      push_ready t ~thread:page;
      Ok page

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)

let container_of_proc t ~proc =
  (Perm_map.borrow t.proc_perms ~ptr:proc).Process.owner_container

let container_of_thread t ~thread =
  let th = Perm_map.borrow t.thrd_perms ~ptr:thread in
  container_of_proc t ~proc:th.Thread.owner_proc

let new_endpoint t ~thread ~slot =
  match Perm_map.borrow_opt t.thrd_perms ~ptr:thread with
  | None -> Error Errno.Esrch
  | Some th ->
    if slot < 0 || slot >= Kconfig.max_endpoint_slots then Error Errno.Einval
    else if Thread.slot th slot <> None then Error Errno.Eexist
    else
      let container = container_of_thread t ~thread in
      let* page = alloc_object_page t ~container in
      Perm_map.alloc t.edpt_perms ~ptr:page (Endpoint.make ~owner_container:container);
      Perm_map.update t.thrd_perms ~ptr:thread (fun th ->
          Thread.set_slot th slot (Some page));
      Ok page

let drop_endpoint_ref t ~endpoint =
  let e = Perm_map.borrow t.edpt_perms ~ptr:endpoint in
  if e.Endpoint.refcount > 1 then begin
    Perm_map.update t.edpt_perms ~ptr:endpoint (fun e ->
        { e with Endpoint.refcount = e.Endpoint.refcount - 1 });
    `Live
  end
  else begin
    let e = Perm_map.consume t.edpt_perms ~ptr:endpoint in
    free_object_page t ~container:e.Endpoint.owner_container ~page:endpoint;
    `Freed
  end

let close_endpoint_slot t ~thread ~slot =
  match Perm_map.borrow_opt t.thrd_perms ~ptr:thread with
  | None -> Error Errno.Esrch
  | Some th ->
    (match Thread.slot th slot with
     | None -> Error Errno.Einval
     | Some endpoint ->
       let e = Perm_map.borrow t.edpt_perms ~ptr:endpoint in
       (* The last reference cannot be dropped while threads still sit on
          the wait queues (they would dangle). *)
       if
         e.Endpoint.refcount = 1
         && not
              (Static_list.is_empty e.Endpoint.send_queue
               && Static_list.is_empty e.Endpoint.recv_queue)
       then Error Errno.Ebusy
       else begin
         Perm_map.update t.thrd_perms ~ptr:thread (fun th ->
             Thread.set_slot th slot None);
         ignore (drop_endpoint_ref t ~endpoint);
         Ok ()
       end)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                           *)

let ctx_switch_ctr = Atmo_obs.Metrics.counter "sched/ctx_switch"
let steal_ctr = Atmo_obs.Metrics.counter "sched/steal"

let run_thread t ~cpu th =
  Perm_map.update t.thrd_perms ~ptr:th (fun thread ->
      { thread with Thread.state = Thread.Running });
  t.currents.(cpu) <- Some th;
  Atmo_obs.Metrics.Counter.incr ctx_switch_ctr;
  (* zero-duration structural span, batched into one packed record:
     the switch shows up in the tree under whatever kernel path
     triggered it *)
  ignore (Atmo_obs.Span.pair Atmo_obs.Span.Ctx_switch);
  Some th

(* Work stealing: an idle CPU whose own queue is empty takes the OLDEST
   entry from the BACK of a randomized victim's queue (the classic
   deque split: owner pops the front, thieves pop the back).  The
   victim order is a seeded xorshift rotation, so runs are
   reproducible; a CPU never steals from itself. *)
let try_steal t ~cpu =
  let n = sched_cpus t in
  if n <= 1 then None
  else begin
    let start = steal_rand t mod n in
    let rec go i =
      if i >= n then None
      else
        let victim = (start + i) mod n in
        if victim = cpu then go (i + 1)
        else
          match Sched_queue.pop_back t.queues.(victim) with
          | None -> go (i + 1)
          | Some th ->
            Atmo_obs.Metrics.Counter.incr steal_ctr;
            note_steal t ~thief:cpu ~victim ~thread:th;
            (* the stolen thread migrates: future wakeups land here *)
            Hashtbl.replace t.home_cpu th cpu;
            Some th
    in
    go 0
  end

let dequeue_next_on t ~cpu =
  match Sched_queue.pop_front t.queues.(cpu) with
  | Some th -> run_thread t ~cpu th
  | None ->
    (match try_steal t ~cpu with
     | Some th -> run_thread t ~cpu th
     | None ->
       t.currents.(cpu) <- None;
       None)

let dequeue_next t = dequeue_next_on t ~cpu:t.cur_cpu

let preempt_on t ~cpu =
  match t.currents.(cpu) with
  | None -> ()
  | Some th ->
    t.currents.(cpu) <- None;
    enqueue_runnable t ~thread:th

let preempt_current t = preempt_on t ~cpu:t.cur_cpu

let run_queue_list t =
  Array.to_list t.queues |> List.concat_map Sched_queue.to_list

let queue_lists t = Array.map Sched_queue.to_list t.queues

(* ------------------------------------------------------------------ *)
(* Termination                                                         *)

let remove_from_run_queue t ~thread =
  Array.iter (fun q -> Sched_queue.remove_if_queued q thread) t.queues;
  Array.iteri
    (fun i c -> if c = Some thread then t.currents.(i) <- None)
    t.currents

let remove_from_endpoint_queues t ~thread ~endpoint =
  if Perm_map.mem t.edpt_perms ~ptr:endpoint then
    Perm_map.update t.edpt_perms ~ptr:endpoint (fun e ->
        let strip q =
          match Static_list.remove q ~eq:eq_int thread with
          | Ok q' -> q'
          | Error `Absent -> q
        in
        {
          e with
          Endpoint.send_queue = strip e.Endpoint.send_queue;
          Endpoint.recv_queue = strip e.Endpoint.recv_queue;
        })

(* Destroy one thread: leave scheduler and wait queues, release endpoint
   descriptors, free the object page. *)
let destroy_thread t ~thread =
  let th = Perm_map.consume t.thrd_perms ~ptr:thread in
  remove_from_run_queue t ~thread;
  (* a dying thread must leave the steal ledger too — an entry that
     outlives its thread is exactly the steal-vs-terminate race the
     lost-steal lint hunts (the plant skips this scrub) *)
  scrub_steal_ledger t ~thread;
  Hashtbl.remove t.home_cpu thread;
  (match th.Thread.state with
   | Thread.Blocked_send e | Thread.Blocked_recv e ->
     remove_from_endpoint_queues t ~thread ~endpoint:e
   | Thread.Runnable | Thread.Running -> ());
  List.iter (fun (_, e) -> ignore (drop_endpoint_ref t ~endpoint:e)) (Thread.slots th);
  let p = Perm_map.borrow t.proc_perms ~ptr:th.Thread.owner_proc in
  free_object_page t ~container:p.Process.owner_container ~page:thread

(* Destroy one process (not its children): all threads, the address
   space, the page table, the object page. *)
let destroy_process_solo t ~proc =
  let p = Perm_map.borrow t.proc_perms ~ptr:proc in
  let container = p.Process.owner_container in
  List.iter (fun th -> destroy_thread t ~thread:th) (Static_list.to_list p.Process.threads);
  let p = Perm_map.consume t.proc_perms ~ptr:proc in
  (* Uncharge the address space: each mapped block was charged at its
     frame count; dec_ref returns frames to the allocator when the last
     mapping dies. *)
  let spaces = Page_table.address_space p.Process.pt in
  Imap.iter
    (fun _va (e : Page_table.entry) ->
      ignore (Page_alloc.dec_ref t.alloc ~addr:e.Page_table.frame);
      uncharge t ~container ~frames:(Atmo_pmem.Page_state.frames_per e.Page_table.size))
    spaces;
  let tables = Iset.cardinal (Page_table.page_closure p.Process.pt) in
  ignore (Page_table.destroy p.Process.pt);
  uncharge t ~container ~frames:tables;
  (* Unlink from the container and the process tree. *)
  Perm_map.update t.cntr_perms ~ptr:container (fun c ->
      match Static_list.remove c.Container.procs ~eq:eq_int proc with
      | Ok procs -> { c with Container.procs = procs }
      | Error `Absent -> c);
  (match p.Process.parent with
   | Some pp when Perm_map.mem t.proc_perms ~ptr:pp ->
     Perm_map.update t.proc_perms ~ptr:pp (fun parent ->
         match Static_list.remove parent.Process.children ~eq:eq_int proc with
         | Ok children -> { parent with Process.children = children }
         | Error `Absent -> parent)
   | Some _ | None -> ());
  free_object_page t ~container ~page:proc

(* Collect a process and all its descendants, children first, walking
   the concrete process tree. *)
let rec proc_descendants t ~proc acc =
  let p = Perm_map.borrow t.proc_perms ~ptr:proc in
  let acc =
    List.fold_left
      (fun acc child -> proc_descendants t ~proc:child acc)
      acc
      (Static_list.to_list p.Process.children)
  in
  proc :: acc

let terminate_process t ~proc =
  match Perm_map.borrow_opt t.proc_perms ~ptr:proc with
  | None -> Error Errno.Esrch
  | Some _ ->
    (* children-first order, so unlinking the parent is always safe *)
    let victims = List.rev (proc_descendants t ~proc []) in
    List.iter (fun pr -> destroy_process_solo t ~proc:pr) victims;
    Ok ()

let terminate_container t ~container =
  if container = t.root_container then Error Errno.Eperm
  else
    match Perm_map.borrow_opt t.cntr_perms ~ptr:container with
    | None -> Error Errno.Esrch
    | Some c ->
      let victims = Iset.add container c.Container.subtree in
      (* Tear down every process of every victim container.  Termination
         goes container by container; destroy_process_solo handles the
         threads and endpoint references. *)
      Iset.iter
        (fun cp ->
          let cc = Perm_map.borrow t.cntr_perms ~ptr:cp in
          List.iter
            (fun pr ->
              if Perm_map.mem t.proc_perms ~ptr:pr then
                ignore (terminate_process t ~proc:pr))
            (Static_list.to_list cc.Container.procs))
        victims;
      (* Endpoints owned by victims that survived (referenced from
         outside the subtree) are harvested by the parent: the page
         charge moves up. *)
      let parent = Option.get c.Container.parent in
      Perm_map.iter
        (fun ep e ->
          if Iset.mem e.Endpoint.owner_container victims then begin
            uncharge t ~container:e.Endpoint.owner_container ~frames:1;
            (* Re-charge unconditionally: harvesting must not fail, so it
               bypasses the quota check (the parent regains the child's
               delegation below, which always covers this page). *)
            Perm_map.update t.cntr_perms ~ptr:parent (fun pc ->
                { pc with Container.used = pc.Container.used + 1 });
            Perm_map.update t.edpt_perms ~ptr:ep (fun e ->
                { e with Endpoint.owner_container = parent })
          end)
        t.edpt_perms;
      (* Free the container pages themselves, children before parents so
         the used counter of a container is zero when it dies. *)
      let by_depth =
        Iset.elements victims
        |> List.map (fun cp -> (Perm_map.borrow t.cntr_perms ~ptr:cp, cp))
        |> List.sort (fun (a, _) (b, _) ->
               compare b.Container.depth a.Container.depth)
      in
      List.iter
        (fun (cc, cp) ->
          (match cc.Container.parent with
           | Some pp when not (Iset.mem pp victims) ->
             Perm_map.update t.cntr_perms ~ptr:pp (fun parent_c ->
                 let children =
                   match Static_list.remove parent_c.Container.children ~eq:eq_int cp with
                   | Ok ch -> ch
                   | Error `Absent -> parent_c.Container.children
                 in
                 {
                   parent_c with
                   Container.children;
                   Container.delegated = parent_c.Container.delegated - cc.Container.quota;
                 })
           | Some _ | None -> ());
          let cc = Perm_map.consume t.cntr_perms ~ptr:cp in
          ignore cc;
          Page_alloc.free_kernel_page t.alloc ~addr:cp)
        by_depth;
      (* Shrink the ghost subtree of every surviving ancestor. *)
      List.iter
        (fun anc ->
          if Perm_map.mem t.cntr_perms ~ptr:anc then
            Perm_map.update t.cntr_perms ~ptr:anc (fun a ->
                { a with Container.subtree = Iset.diff a.Container.subtree victims }))
        c.Container.path;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Views                                                               *)

let subtree_containers t ~container =
  let c = Perm_map.borrow t.cntr_perms ~ptr:container in
  Iset.add container c.Container.subtree

let procs_of_subtree t ~container =
  let cs = subtree_containers t ~container in
  Perm_map.fold
    (fun p proc acc ->
      if Iset.mem proc.Process.owner_container cs then Iset.add p acc else acc)
    t.proc_perms Iset.empty

let threads_of_subtree t ~container =
  let ps = procs_of_subtree t ~container in
  Perm_map.fold
    (fun th thread acc ->
      if Iset.mem thread.Thread.owner_proc ps then Iset.add th acc else acc)
    t.thrd_perms Iset.empty

let object_pages t =
  Iset.union_list
    [
      Perm_map.dom t.cntr_perms;
      Perm_map.dom t.proc_perms;
      Perm_map.dom t.thrd_perms;
      Perm_map.dom t.edpt_perms;
    ]

let page_closure t =
  Perm_map.fold
    (fun _ p acc -> Iset.union acc (Page_table.page_closure p.Process.pt))
    t.proc_perms (object_pages t)

let used_by_container t ~container =
  let count_if b = if b then 1 else 0 in
  let own_page = count_if (Perm_map.mem t.cntr_perms ~ptr:container) in
  let proc_pages =
    Perm_map.fold
      (fun _ p acc ->
        if p.Process.owner_container = container then
          acc + 1
          + Iset.cardinal (Page_table.page_closure p.Process.pt)
          + Imap.fold
              (fun _ (e : Page_table.entry) a ->
                a + Atmo_pmem.Page_state.frames_per e.Page_table.size)
              (Page_table.address_space p.Process.pt)
              0
        else acc)
      t.proc_perms 0
  in
  let thread_pages =
    Perm_map.fold
      (fun _ th acc ->
        let p = Perm_map.borrow t.proc_perms ~ptr:th.Thread.owner_proc in
        if p.Process.owner_container = container then acc + 1 else acc)
      t.thrd_perms 0
  in
  let endpoint_pages =
    Perm_map.fold
      (fun _ e acc ->
        if e.Endpoint.owner_container = container then acc + 1 else acc)
      t.edpt_perms 0
  in
  own_page + proc_pages + thread_pages + endpoint_pages
  + external_of t ~container
