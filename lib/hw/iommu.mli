(** Simulated IOMMU.

    Atmosphere programs an IOMMU so that untrusted devices can only DMA
    into frames their owning process mapped for them.  We model the
    context-table indirection: each device (bus/dev/fn collapsed to one
    id) is attached to a translation domain whose root is a 4-level page
    table walked exactly like the CPU MMU. *)

type t

type dma_error = {
  e_device : int;
  e_iova : int;  (** first faulting address of the burst *)
  e_len : int;  (** length of the whole attempted burst *)
  e_write : bool;
  e_reason : [ `No_domain | `Unmapped | `Readonly ];
}
(** Typed DMA fault: why the IOMMU rejected a burst.  Every rejection
    bumps the [iommu/blocked] metrics counter and happens before any
    byte of {!Phys_mem} is touched. *)

val pp_dma_error : Format.formatter -> dma_error -> unit

val blocked : unit -> int
(** Process-wide count of DMA bursts the IOMMU rejected (the
    [iommu/blocked] counter; [Atmo_obs.Metrics.reset] zeroes it). *)

val create : Phys_mem.t -> t

val attach : t -> device:int -> root:int -> unit
(** Attach [device] to the translation domain rooted at [root] (the
    physical address of an L4 table page).  Any existing IOTLB for the
    device is flushed and retired. *)

val detach : t -> device:int -> unit
(** Detach the device and flush its IOTLB. *)

val domain_of : t -> device:int -> int option
(** Translation root currently attached to [device], if any. *)

val devices : t -> int list
(** Attached device ids, unordered. *)

val translate : t -> device:int -> iova:int -> Mmu.translation option
(** Resolve an I/O virtual address for [device]; [None] models a DMA
    fault (unattached device or unmapped iova).  When the software TLB
    is enabled each device has a private IOTLB that caches walks of its
    domain.  CPU-side shootdowns do {e not} reach it — like real
    hardware, the kernel must issue {!iotlb_invlpg} when it unmaps a
    DMA buffer, and forgetting to is a bug [Atmo_san.Tlb_lint]
    detects. *)

val iotlb_invlpg : t -> device:int -> iova:int -> unit
(** Invalidate the IOTLB entry (if any) for one I/O virtual page — the
    invalidation-queue command the kernel queues after an IOMMU unmap. *)

val iotlb_flush : t -> device:int -> unit
(** Drop every cached translation of the device's IOTLB. *)

val iter_iotlbs : t -> (device:int -> Tlb.t -> unit) -> unit
(** Iterate live IOTLBs (coherence lint uses this). *)

val dma_write : t -> device:int -> iova:int -> bytes -> bool
(** Device-initiated write through the IOMMU; fails (returning [false])
    on fault or read-only mapping, without partial writes across
    unmapped boundaries within one 4 KiB frame. *)

val dma_read : t -> device:int -> iova:int -> len:int -> bytes option

val dma_write_checked : t -> device:int -> iova:int -> bytes -> (unit, dma_error) result
(** Like {!dma_write} but says why a burst was rejected, so drivers can
    surface a typed error instead of a bare failure. *)

val dma_read_checked : t -> device:int -> iova:int -> len:int -> (bytes, dma_error) result

val faults : t -> int
(** Count of rejected DMA operations since creation. *)
