(** Software TLB: per-address-space translation caching with an explicit
    shootdown protocol.

    Every hot path of the stack translates through {!Mmu.resolve}
    (kernel dispatch, IPC buffer access, mmap probes) or the IOMMU
    (ixgbe / NVMe DMA); without a TLB each translation is a 4-level walk
    of 3-4 {!Phys_mem.read_u64}s.  This module caches walk results in a
    direct-mapped-with-ways array per address space, tagged by the cr3
    root (the ASID — distinct roots never alias), holding the frame
    base, mapping size (4 KiB / 2 MiB / 1 GiB) and the meet-of-perms
    computed by the walk, so a warm translation is one array probe.

    Caching is only sound with invalidation, and the invalidation points
    are the interesting part: {!Page_table} issues a precise
    invlpg-style {!invlpg} / {!shoot_range} after every mapping
    mutation, {!flush_asid} tears the whole space down on destroy, the
    page allocator shoots physical ranges on superpage merge / split,
    and the IOMMU keeps a parallel IOTLB (instances created here with
    [kind:`Io]) that the kernel must invalidate explicitly on io_unmap /
    device detach — CPU-side shootdowns deliberately do not reach it,
    as on real hardware.  [Atmo_san.Tlb_lint] checks coherence: every
    live entry must agree with a fresh cold walk. *)

type t
(** One translation cache (an address space's TLB, or a device's IOTLB). *)

val capacity : int
(** Total entries per cache (sets x ways). *)

val create : Phys_mem.t -> asid:int -> kind:[ `Cpu | `Io ] -> t
(** A standalone cache.  [kind] selects which global counter family
    ("tlb/..." or "iotlb/...") the instance feeds.  CPU-side caches are
    normally obtained through {!space} instead. *)

val mem : t -> Phys_mem.t
val asid : t -> int

val live : t -> int
(** Number of valid entries. *)

val lookup : t -> vaddr:int -> (int * int * Pte_bits.perm) option
(** [(frame, size, perm)] of the cached mapping covering [vaddr], if
    any; bumps the hit / miss counters. *)

val insert : t -> vaddr:int -> frame:int -> size:int -> perm:Pte_bits.perm -> unit
(** Cache a successful walk result (negative results are never cached).
    [frame] is the mapping's base frame, so the physical address is
    [frame + (vaddr land (size - 1))]. *)

val invalidate_page : t -> vaddr:int -> unit
(** invlpg: drop the entry for [vaddr]'s page, if cached. *)

val invalidate_range : t -> vaddr:int -> bytes:int -> unit
(** Precise per-page invalidation of a span, falling back to {!flush}
    past the precision threshold (superpage spans), like a cr3 write. *)

val invalidate_frames : t -> lo:int -> hi:int -> unit
(** Drop every entry whose backing physical range intersects
    [\[lo, hi)] — used when the allocator reshapes physical blocks. *)

val flush : t -> unit
(** Drop every entry; emits a [Tlb_flush] event when tracing. *)

val entries : t -> (int * int * int * Pte_bits.perm) list
(** Live entries as [(virtual base, frame, size, perm)], for the
    coherence lint. *)

(** {2 CPU-side registry}

    The MMU and the page-table layer address caches by [(memory, cr3)];
    the registry creates them on demand and drops them on ASID flush. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Arm / disarm translation caching globally (default: on).  Both
    transitions drop every cached entry, so a disabled run is a pure
    cold-walk oracle. *)

val space : Phys_mem.t -> cr3:int -> t
(** Find-or-create the cache for an address space. *)

val space_opt : Phys_mem.t -> cr3:int -> t option

val invlpg : Phys_mem.t -> cr3:int -> vaddr:int -> unit
(** Shootdown of one page in one address space; no-op if the space has
    no cache yet. *)

val shoot_range : Phys_mem.t -> cr3:int -> vaddr:int -> bytes:int -> unit

val flush_asid : Phys_mem.t -> cr3:int -> unit
(** Flush and unregister the cache of a dying (or reused) root. *)

val shoot_frames : Phys_mem.t -> lo:int -> hi:int -> unit
(** Physical-range shootdown across every registered space of [mem]. *)

val iter_spaces : (t -> unit) -> unit
(** Every registered CPU-side cache (the lint's iteration surface). *)

val clear : unit -> unit
(** Drop all registered caches (tests / fresh CLI runs). *)

(** {2 Counters}

    Counts are process-global per family and live in the
    {!Atmo_obs.Metrics} registry ("tlb/hits", "iotlb/flushes", ...), so
    [atmo trace] surfaces them without extra plumbing. *)

type stats = { hits : int; misses : int; evictions : int; flushes : int; invlpgs : int }

val cpu_stats : unit -> stats
val io_stats : unit -> stats
