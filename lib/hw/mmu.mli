(** Simulated x86-64 MMU: a 4-level page-table walk interpreter.

    The refinement theorem of the paper's page-table subsystem states that
    the abstract virtual-to-physical map equals "what the MMU sees".  This
    module is the "MMU sees" side: it walks real page tables stored in
    {!Phys_mem} frames, independently of the kernel code that built them,
    so comparing it against the abstract map is a genuine end-to-end
    check. *)

type translation = {
  paddr : int;  (** resolved physical byte address *)
  frame : int;  (** base address of the backing frame *)
  size : int;  (** mapping granularity in bytes: 4 KiB, 2 MiB or 1 GiB *)
  perm : Pte_bits.perm;
}

val canonical : int -> bool
(** True iff the address is canonical for 48-bit virtual addressing. *)

val l4_index : int -> int
val l3_index : int -> int
val l2_index : int -> int
val l1_index : int -> int
(** Index of a virtual address at each paging level (0..511). *)

val va_of_indices : l4:int -> l3:int -> l2:int -> l1:int -> int
(** Reassemble a canonical virtual address from its four indices; inverse
    of the four index functions for 4 KiB-aligned addresses. *)

val entry_addr : table:int -> index:int -> int
(** Physical address of entry [index] in the table page at [table]. *)

val resolve : Phys_mem.t -> cr3:int -> vaddr:int -> translation option
(** Translate [vaddr] through the page table rooted at [cr3].  [None]
    models a page fault (non-present entry at any level or non-canonical
    address).  When the software {!Tlb} is enabled (the default) a warm
    translation is served from the cache and successful walks refill it;
    results are bit-identical to {!walk} as long as every table mutation
    issues its shootdown (checked by [Atmo_san.Tlb_lint]). *)

val walk : Phys_mem.t -> cr3:int -> vaddr:int -> translation option
(** The raw 4-level walk, always reading the tables — the cold oracle
    for {!resolve}.  Checkers and lints use this so a stale TLB entry
    can never hide a corrupted table from them. *)

val read_u64 : Phys_mem.t -> cr3:int -> vaddr:int -> int64 option
(** Virtual load through the walk; [None] on fault. *)

val write_u64 : Phys_mem.t -> cr3:int -> vaddr:int -> int64 -> bool
(** Virtual store through the walk; [false] on fault or read-only
    mapping. *)

val walk_steps : unit -> int
(** Total page-table-walk memory references performed since start.
    @deprecated Shim over the ["mmu/walk_loads"] counter in
    {!Atmo_obs.Metrics}; read that registry entry instead. *)
