module Metrics = Atmo_obs.Metrics

(* Geometry: a direct-mapped-with-ways array, 64 sets x 4 ways per
   address space.  256 entries is deliberately small (real L2 TLBs hold
   1-2K): evictions must happen in the simulation so the replacement
   path is exercised, and a full-capacity sweep stays cheap enough to
   use as a range-invalidation fallback. *)
let sets = 64
let ways = 4
let capacity = sets * ways

(* A slot caches one walk result keyed by the exact 4 KiB virtual page
   probed, even when the backing mapping is a 2 MiB / 1 GiB superpage:
   [frame] is the superpage base and [size] its extent, so the physical
   address is rebuilt as [frame + (vaddr land (size - 1))], exactly the
   walker's formula.  [vpn = -1] marks an empty slot. *)
type slot = {
  mutable vpn : int;
  mutable frame : int;
  mutable size : int;
  mutable perm : Pte_bits.perm;
}

type counters = {
  hits : Metrics.Counter.t;
  misses : Metrics.Counter.t;
  evictions : Metrics.Counter.t;
  flushes : Metrics.Counter.t;
  invlpgs : Metrics.Counter.t;
}

let mk_counters prefix =
  {
    hits = Metrics.counter (prefix ^ "/hits");
    misses = Metrics.counter (prefix ^ "/misses");
    evictions = Metrics.counter (prefix ^ "/evictions");
    flushes = Metrics.counter (prefix ^ "/flushes");
    invlpgs = Metrics.counter (prefix ^ "/invlpgs");
  }

let cpu_counters = mk_counters "tlb"
let io_counters = mk_counters "iotlb"

type t = {
  mem : Phys_mem.t;
  asid : int;
  slots : slot array;  (* sets * ways, flat: set s occupies [s*ways, ...) *)
  rr : int array;  (* per-set round-robin replacement pointer *)
  mutable live : int;
  c : counters;
}

let no_perm : Pte_bits.perm = { write = false; user = false; execute = false }

let create mem ~asid ~kind =
  {
    mem;
    asid;
    slots =
      Array.init capacity (fun _ -> { vpn = -1; frame = 0; size = 0; perm = no_perm });
    rr = Array.make sets 0;
    live = 0;
    c = (match kind with `Cpu -> cpu_counters | `Io -> io_counters);
  }

let mem t = t.mem
let asid t = t.asid
let live t = t.live

(* [vaddr lsr 12] is injective on page bases (a logical shift keeps the
   sign bits of canonical high-half addresses as tag bits), and
   [vpn lsl 12] restores the exact page base including the sign. *)
let vpn_of vaddr = vaddr lsr 12
let vbase_of vpn = vpn lsl 12

(* Fold superpage-stride bits into the set index so runs of 4 KiB pages,
   2 MiB steps and 1 GiB steps all spread across sets. *)
let set_of vpn = (vpn lxor (vpn lsr 9) lxor (vpn lsr 18)) land (sets - 1)

let lookup t ~vaddr =
  let vpn = vpn_of vaddr in
  let base = set_of vpn * ways in
  let rec probe w =
    if w >= ways then begin
      Metrics.Counter.incr t.c.misses;
      None
    end
    else
      let s = t.slots.(base + w) in
      if s.vpn = vpn then begin
        Metrics.Counter.incr t.c.hits;
        Some (s.frame, s.size, s.perm)
      end
      else probe (w + 1)
  in
  probe 0

let insert t ~vaddr ~frame ~size ~perm =
  let vpn = vpn_of vaddr in
  let base = set_of vpn * ways in
  (* reuse a matching or empty way; otherwise evict round-robin *)
  let rec pick w best =
    if w >= ways then best
    else
      let s = t.slots.(base + w) in
      if s.vpn = vpn then w
      else pick (w + 1) (if best < 0 && s.vpn = -1 then w else best)
  in
  let way =
    match pick 0 (-1) with
    | -1 ->
      let set = set_of vpn in
      let w = t.rr.(set) in
      t.rr.(set) <- (w + 1) mod ways;
      Metrics.Counter.incr t.c.evictions;
      t.live <- t.live - 1;
      w
    | w -> w
  in
  let s = t.slots.(base + way) in
  if s.vpn <> vpn then t.live <- t.live + 1;
  s.vpn <- vpn;
  s.frame <- frame;
  s.size <- size;
  s.perm <- perm

let kill t s =
  if s.vpn <> -1 then begin
    s.vpn <- -1;
    t.live <- t.live - 1
  end

let invalidate_page t ~vaddr =
  Metrics.Counter.incr t.c.invlpgs;
  let vpn = vpn_of vaddr in
  let base = set_of vpn * ways in
  for w = 0 to ways - 1 do
    let s = t.slots.(base + w) in
    if s.vpn = vpn then kill t s
  done

let flush t =
  Metrics.Counter.incr t.c.flushes;
  Atmo_obs.Sink.emit_tlb_flush ~asid:t.asid ~entries:t.live ();
  Array.iter (fun s -> s.vpn <- -1) t.slots;
  t.live <- 0

(* Precise invlpg per covered page when the span is small; past the
   precision threshold (a 2 MiB unmap already covers 512 pages, more
   than the whole array) a full flush of the address space is cheaper,
   exactly as real kernels fall back to writing cr3. *)
let precise_limit = 64

let invalidate_range t ~vaddr ~bytes =
  if bytes > 0 then begin
    let pages = (bytes + Phys_mem.page_size - 1) / Phys_mem.page_size in
    if pages > precise_limit then flush t
    else
      for i = 0 to pages - 1 do
        invalidate_page t ~vaddr:(vaddr + (i * Phys_mem.page_size))
      done
  end

let invalidate_frames t ~lo ~hi =
  if t.live > 0 then begin
    let killed = ref 0 in
    Array.iter
      (fun s -> if s.vpn <> -1 && s.frame < hi && lo < s.frame + s.size then begin
           kill t s;
           incr killed
         end)
      t.slots;
    if !killed > 0 then Metrics.Counter.incr t.c.flushes
  end

let entries t =
  Array.fold_left
    (fun acc s ->
      if s.vpn = -1 then acc else (vbase_of s.vpn, s.frame, s.size, s.perm) :: acc)
    [] t.slots

(* ------------------------------------------------------------------ *)
(* CPU-side registry: one cache per (memory, cr3) pair, found by the
   MMU on every resolve and by the page-table code at every shootdown
   point.  The ASID is the cr3 value itself — distinct roots can never
   alias, which is the isolation property the ASID-tagging tests pin. *)

let enabled_flag = ref true
let enabled () = !enabled_flag

let spaces : (int, t) Hashtbl.t = Hashtbl.create 64

(* uids are small (one per Phys_mem.create); cr3 is a physical address
   well below 2^40 for any simulated memory, so the packed key fits. *)
let key mem ~cr3 = (Phys_mem.uid mem lsl 40) + cr3

let space mem ~cr3 =
  let k = key mem ~cr3 in
  match Hashtbl.find_opt spaces k with
  | Some t -> t
  | None ->
    let t = create mem ~asid:cr3 ~kind:`Cpu in
    Hashtbl.replace spaces k t;
    t

let space_opt mem ~cr3 = Hashtbl.find_opt spaces (key mem ~cr3)
let iter_spaces f = Hashtbl.iter (fun _ t -> f t) spaces

let invlpg mem ~cr3 ~vaddr =
  match space_opt mem ~cr3 with None -> () | Some t -> invalidate_page t ~vaddr

let shoot_range mem ~cr3 ~vaddr ~bytes =
  match space_opt mem ~cr3 with
  | None -> ()
  | Some t -> invalidate_range t ~vaddr ~bytes

let flush_asid mem ~cr3 =
  match Hashtbl.find_opt spaces (key mem ~cr3) with
  | None -> ()
  | Some t ->
    flush t;
    Hashtbl.remove spaces (key mem ~cr3)

let shoot_frames mem ~lo ~hi =
  let uid = Phys_mem.uid mem in
  Hashtbl.iter
    (fun _ t -> if Phys_mem.uid t.mem = uid then invalidate_frames t ~lo ~hi)
    spaces

let clear () =
  Hashtbl.iter (fun _ t -> Array.iter (fun s -> s.vpn <- -1) t.slots) spaces;
  Hashtbl.reset spaces

let set_enabled b =
  if b <> !enabled_flag then begin
    (* both edges drop every cached translation so an enable/disable
       toggle can never smuggle state across the boundary *)
    clear ();
    enabled_flag := b
  end

(* ------------------------------------------------------------------ *)
(* Counter snapshots                                                   *)

type stats = { hits : int; misses : int; evictions : int; flushes : int; invlpgs : int }

let stats_of (c : counters) : stats =
  {
    hits = Metrics.Counter.value c.hits;
    misses = Metrics.Counter.value c.misses;
    evictions = Metrics.Counter.value c.evictions;
    flushes = Metrics.Counter.value c.flushes;
    invlpgs = Metrics.Counter.value c.invlpgs;
  }

let cpu_stats () = stats_of cpu_counters
let io_stats () = stats_of io_counters
