type t = {
  mem : Phys_mem.t;
  contexts : (int, int) Hashtbl.t;  (* device id -> translation root *)
  iotlbs : (int, Tlb.t) Hashtbl.t;  (* device id -> its IOTLB *)
  mutable faults : int;
}

type dma_error = {
  e_device : int;
  e_iova : int;
  e_len : int;
  e_write : bool;
  e_reason : [ `No_domain | `Unmapped | `Readonly ];
}

let reason_name = function
  | `No_domain -> "no-domain"
  | `Unmapped -> "unmapped"
  | `Readonly -> "readonly"

let pp_dma_error ppf e =
  Format.fprintf ppf "device %d %s iova=0x%x len=%d: %s" e.e_device
    (if e.e_write then "write" else "read")
    e.e_iova e.e_len (reason_name e.e_reason)

(* Rejected DMA bursts, process-wide (like mmu/walk_loads the registry
   entry lives for the whole process; [Metrics.reset] zeroes it). *)
let blocked_counter = Atmo_obs.Metrics.counter "iommu/blocked"
let blocked () = Atmo_obs.Metrics.Counter.value blocked_counter

let create mem =
  { mem; contexts = Hashtbl.create 16; iotlbs = Hashtbl.create 16; faults = 0 }

let iotlb_of t ~device ~root =
  match Hashtbl.find_opt t.iotlbs device with
  | Some tlb -> tlb
  | None ->
    let tlb = Tlb.create t.mem ~asid:root ~kind:`Io in
    Hashtbl.replace t.iotlbs device tlb;
    tlb

let attach t ~device ~root =
  if not (Phys_mem.is_page_aligned root) then
    invalid_arg "Iommu.attach: root not page-aligned";
  (* A re-attach changes the domain under the device; its IOTLB must not
     carry translations from the old one. *)
  (match Hashtbl.find_opt t.iotlbs device with
   | Some tlb -> Tlb.flush tlb
   | None -> ());
  Hashtbl.remove t.iotlbs device;
  Hashtbl.replace t.contexts device root

let detach t ~device =
  (match Hashtbl.find_opt t.iotlbs device with
   | Some tlb -> Tlb.flush tlb
   | None -> ());
  Hashtbl.remove t.iotlbs device;
  Hashtbl.remove t.contexts device

let domain_of t ~device = Hashtbl.find_opt t.contexts device
let devices t = Hashtbl.fold (fun d _ acc -> d :: acc) t.contexts []
let faults t = t.faults

let iotlb_invlpg t ~device ~iova =
  match Hashtbl.find_opt t.iotlbs device with
  | None -> ()
  | Some tlb -> Tlb.invalidate_page tlb ~vaddr:iova

let iotlb_flush t ~device =
  match Hashtbl.find_opt t.iotlbs device with
  | None -> ()
  | Some tlb -> Tlb.flush tlb

let iter_iotlbs t f = Hashtbl.iter (fun device tlb -> f ~device tlb) t.iotlbs

(* The IOTLB is deliberately NOT reached by CPU-side shootdowns (the
   [Tlb] registry): real IOMMUs have their own invalidation queue, and a
   kernel that unmaps a DMA buffer but forgets the IOTLB invalidation has
   a window where the device still reaches the freed frame.  Modelling
   that window is the point — [Atmo_san.Tlb_lint] catches it. *)
let translate t ~device ~iova =
  match Hashtbl.find_opt t.contexts device with
  | None ->
    t.faults <- t.faults + 1;
    None
  | Some root ->
    let walk () =
      match Mmu.walk t.mem ~cr3:root ~vaddr:iova with
      | None ->
        t.faults <- t.faults + 1;
        None
      | Some tr -> Some tr
    in
    if not (Tlb.enabled ()) then walk ()
    else
      let tlb = iotlb_of t ~device ~root in
      (match Tlb.lookup tlb ~vaddr:iova with
       | Some (frame, size, perm) ->
         Some
           {
             Mmu.paddr = frame + (iova land (size - 1));
             frame;
             size;
             perm;
           }
       | None ->
         (match walk () with
          | None -> None
          | Some tr ->
            Tlb.insert tlb ~vaddr:iova ~frame:tr.Mmu.frame ~size:tr.Mmu.size
              ~perm:tr.Mmu.perm;
            Some tr))

(* DMA bursts may cross frame boundaries; every touched frame must be
   mapped with suitable permissions or the whole burst is rejected
   before a single byte of [Phys_mem] is touched. *)
let span_check t ~device ~iova ~len ~need_write =
  let err reason off =
    t.faults <- t.faults + 1;
    Atmo_obs.Metrics.Counter.incr blocked_counter;
    Error
      { e_device = device; e_iova = iova + off; e_len = len; e_write = need_write;
        e_reason = reason }
  in
  let rec go off =
    if off >= len then Ok ()
    else
      match translate t ~device ~iova:(iova + off) with
      | None ->
        (* [translate] already charged [t.faults] for the miss itself *)
        t.faults <- t.faults - 1;
        err (if Hashtbl.mem t.contexts device then `Unmapped else `No_domain) off
      | Some tr ->
        if need_write && not tr.Mmu.perm.Pte_bits.write then err `Readonly off
        else
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          go (off + (Phys_mem.page_size - in_frame))
  in
  go 0

let dma_write_checked t ~device ~iova data =
  let len = Bytes.length data in
  match span_check t ~device ~iova ~len ~need_write:true with
  | Error e -> Error e
  | Ok () -> begin
    let rec go off =
      if off < len then begin
        match translate t ~device ~iova:(iova + off) with
        | None -> assert false (* span_check checked every frame *)
        | Some tr ->
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          let chunk = min (len - off) (Phys_mem.page_size - in_frame) in
          Phys_mem.blit_to t.mem ~addr:tr.Mmu.paddr (Bytes.sub data off chunk);
          go (off + chunk)
      end
    in
    go 0;
    Ok ()
  end

let dma_write t ~device ~iova data =
  match dma_write_checked t ~device ~iova data with Ok () -> true | Error _ -> false

let dma_read_checked t ~device ~iova ~len =
  match span_check t ~device ~iova ~len ~need_write:false with
  | Error e -> Error e
  | Ok () -> begin
    let dst = Bytes.make len '\000' in
    let rec go off =
      if off < len then begin
        match translate t ~device ~iova:(iova + off) with
        | None -> assert false
        | Some tr ->
          let in_frame = (iova + off) land (Phys_mem.page_size - 1) in
          let chunk = min (len - off) (Phys_mem.page_size - in_frame) in
          Bytes.blit (Phys_mem.blit_from t.mem ~addr:tr.Mmu.paddr ~len:chunk) 0 dst off chunk;
          go (off + chunk)
      end
    in
    go 0;
    Ok dst
  end

let dma_read t ~device ~iova ~len =
  match dma_read_checked t ~device ~iova ~len with Ok b -> Some b | Error _ -> None
