type t = {
  uid : int;
  page_count : int;
  frames : (int, Bytes.t) Hashtbl.t;
}

let page_size = 4096
let page_size_2m = 512 * page_size
let page_size_1g = 512 * page_size_2m

(* Access hook for the sanitizer layer (atmo_san): disabled it costs one
   mutable-bool load per access, exactly like the tracepoint guards in
   atmo_obs, so the unhooked path stays bit-identical. *)
type access_op = Read | Write | Zero

let hook_armed = ref false
let hook : (t -> access_op -> int -> int -> unit) ref = ref (fun _ _ _ _ -> ())

let set_access_hook = function
  | None ->
    hook_armed := false;
    hook := (fun _ _ _ _ -> ())
  | Some f ->
    hook := f;
    hook_armed := true

let observing () = !hook_armed

let uid_counter = ref 0

let create ~page_count =
  if page_count <= 0 then invalid_arg "Phys_mem.create: page_count <= 0";
  incr uid_counter;
  { uid = !uid_counter; page_count; frames = Hashtbl.create 1024 }

let uid t = t.uid

let page_count t = t.page_count
let size_bytes t = t.page_count * page_size
let contains t addr = addr >= 0 && addr < size_bytes t
let page_base addr = addr land lnot (page_size - 1)
let page_index addr = addr / page_size
let addr_of_index i = i * page_size
let is_page_aligned addr = addr land (page_size - 1) = 0

let check_bounds t addr len what =
  if addr < 0 || addr + len > size_bytes t then
    invalid_arg (Printf.sprintf "Phys_mem.%s: address 0x%x out of bounds" what addr)

(* Frames are materialised lazily and zero-filled, like RAM from a boot
   allocator.  Reads of untouched frames return zero without allocating. *)
let frame_of t addr =
  let idx = page_index addr in
  match Hashtbl.find_opt t.frames idx with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    Hashtbl.replace t.frames idx b;
    b

let frame_opt t addr = Hashtbl.find_opt t.frames (page_index addr)

let read_u64 t ~addr =
  check_bounds t addr 8 "read_u64";
  if addr land 7 <> 0 then invalid_arg "Phys_mem.read_u64: unaligned";
  if !hook_armed then !hook t Read addr 8;
  match frame_opt t addr with
  | None -> 0L
  | Some b -> Bytes.get_int64_le b (addr land (page_size - 1))

let write_u64 t ~addr v =
  check_bounds t addr 8 "write_u64";
  if addr land 7 <> 0 then invalid_arg "Phys_mem.write_u64: unaligned";
  if !hook_armed then !hook t Write addr 8;
  Bytes.set_int64_le (frame_of t addr) (addr land (page_size - 1)) v

let read_u8 t ~addr =
  check_bounds t addr 1 "read_u8";
  if !hook_armed then !hook t Read addr 1;
  match frame_opt t addr with
  | None -> 0
  | Some b -> Char.code (Bytes.get b (addr land (page_size - 1)))

let write_u8 t ~addr v =
  check_bounds t addr 1 "write_u8";
  if !hook_armed then !hook t Write addr 1;
  Bytes.set (frame_of t addr) (addr land (page_size - 1)) (Char.chr (v land 0xff))

(* Dropping the frame is observationally identical to zero-filling it
   (untouched frames read as zero) and keeps the simulation sparse even
   when superpages are zeroed. *)
let zero_page t ~addr =
  check_bounds t addr page_size "zero_page";
  if addr land (page_size - 1) <> 0 then invalid_arg "Phys_mem.zero_page: unaligned";
  if !hook_armed then !hook t Zero addr page_size;
  Hashtbl.remove t.frames (page_index addr)

let blit_to t ~addr src =
  let len = Bytes.length src in
  check_bounds t addr len "blit_to";
  if !hook_armed && len > 0 then !hook t Write addr len;
  let rec go off =
    if off < len then begin
      let a = addr + off in
      let in_frame = a land (page_size - 1) in
      let chunk = min (len - off) (page_size - in_frame) in
      Bytes.blit src off (frame_of t a) in_frame chunk;
      go (off + chunk)
    end
  in
  go 0

let blit_from t ~addr ~len =
  check_bounds t addr len "blit_from";
  if !hook_armed && len > 0 then !hook t Read addr len;
  let dst = Bytes.make len '\000' in
  let rec go off =
    if off < len then begin
      let a = addr + off in
      let in_frame = a land (page_size - 1) in
      let chunk = min (len - off) (page_size - in_frame) in
      (match frame_opt t a with
       | None -> ()
       | Some b -> Bytes.blit b in_frame dst off chunk);
      go (off + chunk)
    end
  in
  go 0;
  dst

let touched_frames t = Hashtbl.length t.frames
