type translation = {
  paddr : int;
  frame : int;
  size : int;
  perm : Pte_bits.perm;
}

(* Walk memory references feed a registry counter (handle cached once;
   [Metrics.reset] zeroes it in place) instead of the old module-local
   ref, so [atmo trace] surfaces it and per-instance consumers can diff
   it around a region of interest. *)
let walk_loads = Atmo_obs.Metrics.counter "mmu/walk_loads"

let walk_steps () = Atmo_obs.Metrics.Counter.value walk_loads

let canonical va =
  let top = va asr 47 in
  top = 0 || top = -1

let l4_index va = (va lsr 39) land 0x1ff
let l3_index va = (va lsr 30) land 0x1ff
let l2_index va = (va lsr 21) land 0x1ff
let l1_index va = (va lsr 12) land 0x1ff

let va_of_indices ~l4 ~l3 ~l2 ~l1 =
  let raw = (l4 lsl 39) lor (l3 lsl 30) lor (l2 lsl 21) lor (l1 lsl 12) in
  (* sign-extend bit 47 to keep the address canonical *)
  if l4 land 0x100 <> 0 then raw lor (-1 lsl 48) else raw

let entry_addr ~table ~index =
  if index < 0 || index > 511 then invalid_arg "Mmu.entry_addr: index";
  table + (index * 8)

let load mem ~table ~index =
  Atmo_obs.Metrics.Counter.incr walk_loads;
  Atmo_obs.Sink.emit_pte_touch ~table ~index ();
  Phys_mem.read_u64 mem ~addr:(entry_addr ~table ~index)

(* Intersection of permissions along the walk: hardware allows an access
   only if every level grants it. *)
let meet (a : Pte_bits.perm) (b : Pte_bits.perm) : Pte_bits.perm =
  {
    write = a.write && b.write;
    user = a.user && b.user;
    execute = a.execute && b.execute;
  }

let walk mem ~cr3 ~vaddr =
  if not (canonical vaddr) then None
  else
    let e4 = load mem ~table:cr3 ~index:(l4_index vaddr) in
    if not (Pte_bits.is_present e4) then None
    else
      let p4 = Pte_bits.perm_of e4 in
      let e3 = load mem ~table:(Pte_bits.addr_of e4) ~index:(l3_index vaddr) in
      if not (Pte_bits.is_present e3) then None
      else if Pte_bits.is_huge e3 then
        let frame = Pte_bits.addr_of e3 in
        let off = vaddr land (Phys_mem.page_size_1g - 1) in
        Some
          {
            paddr = frame + off;
            frame;
            size = Phys_mem.page_size_1g;
            perm = meet p4 (Pte_bits.perm_of e3);
          }
      else
        let p3 = meet p4 (Pte_bits.perm_of e3) in
        let e2 = load mem ~table:(Pte_bits.addr_of e3) ~index:(l2_index vaddr) in
        if not (Pte_bits.is_present e2) then None
        else if Pte_bits.is_huge e2 then
          let frame = Pte_bits.addr_of e2 in
          let off = vaddr land (Phys_mem.page_size_2m - 1) in
          Some
            {
              paddr = frame + off;
              frame;
              size = Phys_mem.page_size_2m;
              perm = meet p3 (Pte_bits.perm_of e2);
            }
        else
          let p2 = meet p3 (Pte_bits.perm_of e2) in
          let e1 = load mem ~table:(Pte_bits.addr_of e2) ~index:(l1_index vaddr) in
          if not (Pte_bits.is_present e1) then None
          else
            let frame = Pte_bits.addr_of e1 in
            let off = vaddr land (Phys_mem.page_size - 1) in
            Some
              {
                paddr = frame + off;
                frame;
                size = Phys_mem.page_size;
                perm = meet p2 (Pte_bits.perm_of e1);
              }

let resolve mem ~cr3 ~vaddr =
  let r =
    if not (Tlb.enabled ()) then walk mem ~cr3 ~vaddr
    else begin
      let tlb = Tlb.space mem ~cr3 in
      match Tlb.lookup tlb ~vaddr with
      | Some (frame, size, perm) ->
        Atmo_obs.Sink.emit_tlb_hit ~vaddr ();
        (* same reconstruction as the walk's leaf cases, so a hit is
           bit-identical to the walk it replaces *)
        Some { paddr = frame + (vaddr land (size - 1)); frame; size; perm }
      | None ->
        Atmo_obs.Sink.emit_tlb_miss ~vaddr ();
        let sid = Atmo_obs.Span.begin_ Atmo_obs.Span.Mmu_fill in
        let r = walk mem ~cr3 ~vaddr in
        (match r with
         | Some tr -> Tlb.insert tlb ~vaddr ~frame:tr.frame ~size:tr.size ~perm:tr.perm
         | None -> ());
        if sid <> 0 then Atmo_obs.Span.end_ sid;
        r
    end
  in
  if Atmo_obs.Sink.tracing_tag Atmo_obs.Event.tag_mmu_walk then
    Atmo_obs.Sink.emit_mmu_walk ~vaddr ~ok:(r <> None) ();
  r

let read_u64 mem ~cr3 ~vaddr =
  match resolve mem ~cr3 ~vaddr with
  | None -> None
  | Some tr -> Some (Phys_mem.read_u64 mem ~addr:tr.paddr)

let write_u64 mem ~cr3 ~vaddr v =
  match resolve mem ~cr3 ~vaddr with
  | None -> false
  | Some tr ->
    if not tr.perm.write then false
    else begin
      Phys_mem.write_u64 mem ~addr:tr.paddr v;
      true
    end
