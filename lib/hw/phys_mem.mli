(** Simulated physical memory.

    The paper's kernel runs on bare-metal x86-64; here physical memory is a
    sparse array of byte-accurate 4 KiB frames.  Page tables built by the
    kernel are stored in these frames as real 512-entry little-endian u64
    arrays, so the {!Mmu} walker resolves translations exactly as the
    hardware would.

    Addresses are plain [int]s (63-bit, always non-negative in practice).
    Frames are allocated lazily on first touch and zero-filled, matching
    the behaviour of RAM handed out by a boot allocator. *)

type t

val page_size : int
(** Size of a base frame: 4096 bytes. *)

val page_size_2m : int
(** Size of a 2 MiB superpage frame. *)

val page_size_1g : int
(** Size of a 1 GiB superpage frame. *)

val create : page_count:int -> t
(** [create ~page_count] is a memory of [page_count] 4 KiB frames starting
    at physical address 0.  Raises [Invalid_argument] if
    [page_count <= 0]. *)

val uid : t -> int
(** Process-unique identity of this memory, stamped at creation.  Lets
    external observers (the sanitizer) key per-memory state without
    retaining the memory itself. *)

(** {2 Sanitizer access hook}

    A single process-global hook observing every load/store/zero, in the
    style of the {!Atmo_obs.Sink} tracepoint guard: when no hook is
    installed (the default) each access costs one mutable-bool load and
    nothing else, so the unhooked path is bit-identical.  The hook runs
    after bounds/alignment validation and before the access. *)

type access_op =
  | Read
  | Write
  | Zero  (** whole-frame zeroing via {!zero_page} *)

val set_access_hook : (t -> access_op -> int -> int -> unit) option -> unit
(** [set_access_hook (Some f)]: call [f mem op addr len] on every access
    to every memory; [None] restores the zero-cost path. *)

val observing : unit -> bool
(** True iff an access hook is installed. *)

val page_count : t -> int

val size_bytes : t -> int
(** Total bytes of simulated physical memory. *)

val contains : t -> int -> bool
(** [contains mem addr] is true iff [addr] is a valid byte address. *)

val page_base : int -> int
(** Round an address down to its 4 KiB frame base. *)

val page_index : int -> int
(** Frame number of an address ([addr / page_size]). *)

val addr_of_index : int -> int
(** Inverse of {!page_index} for frame bases. *)

val is_page_aligned : int -> bool

val read_u64 : t -> addr:int -> int64
(** Little-endian 8-byte load.  [addr] must be 8-byte aligned and in
    bounds; raises [Invalid_argument] otherwise. *)

val write_u64 : t -> addr:int -> int64 -> unit
(** Little-endian 8-byte store, same alignment rules as {!read_u64}. *)

val read_u8 : t -> addr:int -> int

val write_u8 : t -> addr:int -> int -> unit

val zero_page : t -> addr:int -> unit
(** Zero the 4 KiB frame at [addr].  [addr] must be page-aligned and the
    whole page must lie in bounds; raises [Invalid_argument] otherwise,
    mirroring {!read_u64}'s contract. *)

val blit_to : t -> addr:int -> bytes -> unit
(** Copy [bytes] into memory at [addr]; must fit within bounds (may cross
    frame boundaries). *)

val blit_from : t -> addr:int -> len:int -> bytes
(** Read [len] bytes starting at [addr]. *)

val touched_frames : t -> int
(** Number of frames that have been materialised (written or zeroed);
    used by tests to check the memory stays sparse. *)
