(* User-space driver pipeline (§6.5-§6.6), hosted on the kernel: a
   driver process boots, maps its packet arena with mmap, gets the NIC
   assigned with its own IOMMU page table, opens DMA windows with
   io_map, and then frames flow: wire -> NIC descriptor rings (DMA
   through the device's IOMMU table) -> shared-memory ring -> Maglev ->
   kv-store backends.  Every kernel interaction is a real system call;
   total_wf is checked at the end.

   Run with: dune exec examples/driver_pipeline.exe *)

open Atmo_util
module Clock = Atmo_hw.Clock
module Pte = Atmo_hw.Pte_bits
module Page_state = Atmo_pmem.Page_state
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Cost = Atmo_sim.Cost
module Ring = Atmo_sim.Ring
module Ixgbe = Atmo_drivers.Ixgbe
module Packet = Atmo_net.Packet
module Maglev = Atmo_net.Maglev
module Kv_store = Atmo_net.Kv_store

let say fmt = Format.printf (fmt ^^ "@.")

let expect what = function
  | Syscall.Rerr e -> failwith (Format.asprintf "%s: %a" what Errno.pp e)
  | r -> r

let () =
  let cost = Cost.default in
  let clock = Clock.create () in

  say "Booting the kernel; the init thread acts as the driver process.";
  let k, driver =
    match Kernel.boot Kernel.default_boot with
    | Ok v -> v
    | Error e -> failwith (Format.asprintf "boot: %a" Errno.pp e)
  in

  (* the packet arena: 1 descriptor-ring page + 1 shared-ring page + 32
     buffers, mapped into the driver's address space by mmap *)
  let arena_va = 0x4000_0000 in
  let pages = 34 in
  (match
     expect "mmap arena"
       (Kernel.step k ~thread:driver
          (Syscall.Mmap { va = arena_va; count = pages; size = Page_state.S4k; perm = Pte.perm_rw }))
   with
   | Syscall.Rmapped frames -> assert (List.length frames = pages)
   | _ -> failwith "mmap shape");

  say "Assigning the NIC (device 0): the kernel builds its IOMMU page table.";
  ignore (expect "assign_device" (Kernel.step k ~thread:driver (Syscall.Assign_device { device = 0 })));

  (* open DMA windows: iova i -> the frame backing arena page i.  Only
     the NIC's ring and buffers are exposed; the shared ring page
     (arena page 1) stays CPU-only, invisible to the device. *)
  let iova_base = 0x9000_0000 in
  let iova_of i = iova_base + (i * 4096) in
  for i = 0 to pages - 1 do
    if i <> 1 then
      ignore
        (expect "io_map"
           (Kernel.step k ~thread:driver
              (Syscall.Io_map
                 { device = 0; iova = iova_of i; va = arena_va + (i * 4096) })))
  done;
  say "DMA windows open: %d pages visible to the device (shared ring excluded)." (pages - 1);

  (* the NIC model DMAs through the device's IOMMU table *)
  let nic = Ixgbe.create k.Kernel.mem k.Kernel.iommu ~device:0 ~clock ~cost in
  (match
     Ixgbe.setup_rx nic ~ring_iova:(iova_of 0)
       ~buffers:(Array.init 32 (fun i -> (iova_of (i + 2), 2048)))
   with
   | Ok () -> say "NIC RX ring programmed (32 descriptors at iova 0x%x)." (iova_of 0)
   | Error e -> failwith (Atmo_devmodel.Fault.error_to_string e));

  (* the shared ring lives in the frame backing arena page 1 — the
     CPU-only page the device cannot touch *)
  let shared_frame =
    match Kernel.resolve_user k ~thread:driver ~vaddr:(arena_va + 4096) with
    | Some tr -> tr.Atmo_hw.Mmu.frame
    | None -> failwith "shared ring page unmapped"
  in
  let ring = Ring.create k.Kernel.mem ~base:shared_frame ~slots:64 ~slot_size:128 ~clock ~cost in

  (* sanity: the device must NOT be able to reach the shared ring *)
  assert (Atmo_hw.Iommu.translate k.Kernel.iommu ~device:0 ~iova:(iova_of 1) = None);

  (* application stage: Maglev steers to one of 4 kv-store backends *)
  let backend_names = List.init 4 (fun i -> Printf.sprintf "kv%d" i) in
  let lb = Maglev.create ~backends:backend_names ~table_size:65537 in
  let stores = List.map (fun n -> (n, Kv_store.create ~entries:1021)) backend_names in

  (* clients keep one connection per key, so the load balancer's flow
     affinity sends a key's SET and GET to the same backend *)
  let flow_for_key key =
    let h = Int64.to_int (Atmo_net.Fnv.hash_string key) land 0xffff in
    Packet.flow_of_ints ~src:(0x0a00_0000 + h) ~dst:0x0b00_0001 ~sport:(1024 + h)
      ~dport:11211
  in
  let hits = ref 0 and replies = ref 0 in
  let inject_and_drain payload_of i =
    let key = Printf.sprintf "key-%d" (i mod 200) in
    ignore (Ixgbe.wire_deliver nic (Packet.build (flow_for_key key) ~payload:(payload_of key)));
    List.iter (fun frame -> ignore (Ring.push ring frame)) (Ixgbe.rx_burst nic ~max:8);
    let rec drain () =
      match Ring.pop ring with
      | None -> ()
      | Some frame ->
        (match (Maglev.lookup_packet lb frame, Packet.payload frame) with
         | Some backend, Some payload ->
           let reply = Kv_store.serve (List.assoc backend stores) payload in
           (match Kv_store.decode_reply reply with
            | Some (Kv_store.Value _) -> incr hits
            | _ -> ());
           incr replies
         | _ -> ());
        drain ()
    in
    drain ()
  in

  say "@.Warming the cluster: 200 SETs through the pipeline...";
  for i = 0 to 199 do
    inject_and_drain
      (fun key ->
        Kv_store.encode_request (Kv_store.Set (Bytes.of_string key, Bytes.of_string ("val:" ^ key))))
      i
  done;
  let warm_replies = !replies in

  say "Injecting 500 kv GET requests on the wire...";
  for i = 0 to 499 do
    inject_and_drain (fun key -> Kv_store.encode_request (Kv_store.Get (Bytes.of_string key))) i
  done;

  let rx, _ = Ixgbe.stats nic in
  say "pipeline: %d frames received, %d replies (%d warm-up), %d value hits, %d drops"
    rx !replies warm_replies !hits (Ixgbe.rx_drops nic);
  say "virtual time: %.1f us (%d cycles of driver work + ring ops)"
    (Clock.seconds clock *. 1e6) (Clock.now clock);

  (* interrupt-driven mode: instead of polling, the driver sleeps in
     recv on an endpoint the NIC's interrupt is routed to *)
  say "@.Switching to interrupt-driven receive:";
  ignore (expect "ep" (Kernel.step k ~thread:driver (Syscall.New_endpoint { slot = 1 })));
  ignore
    (expect "register_irq"
       (Kernel.step k ~thread:driver (Syscall.Register_irq { device = 0; slot = 1 })));
  (match Kernel.step k ~thread:driver (Syscall.Recv { slot = 1 }) with
   | Syscall.Rblocked -> say "  driver sleeps in recv (no packets, no polling)"
   | r -> failwith (Format.asprintf "recv: %a" Syscall.pp_ret r));
  let key = "key-0" in
  ignore
    (Ixgbe.wire_deliver nic
       (Packet.build (flow_for_key key)
          ~payload:(Kv_store.encode_request (Kv_store.Get (Bytes.of_string key)))));
  ignore (expect "irq" (Kernel.step k ~thread:driver (Syscall.Irq_fire { device = 0 })));
  (match Kernel.take_delivered k ~thread:driver with
   | Some m ->
     say "  interrupt from device %d woke the driver; harvesting the frame"
       (List.hd m.Atmo_pm.Message.scalars);
     (match Ixgbe.rx_burst nic ~max:1 with
      | [ _frame ] -> say "  one frame harvested after wakeup"
      | l -> failwith (Printf.sprintf "expected 1 frame, got %d" (List.length l)))
   | None -> failwith "driver was not woken by the interrupt");

  (match Atmo_core.Invariants.total_wf k with
   | Ok () -> say "total_wf holds after the run (closures disjoint, no leaks)."
   | Error msg -> failwith ("total_wf: " ^ msg));

  (* throughput of the same pipeline per the §6.5 configurations *)
  let app = 180 + (2 * 2 * 16) in
  say "@.model throughput for this app (kv ~16B):";
  List.iter
    (fun config ->
      say "  %-14s %6.2f Mpps"
        (Atmo_sim.Pipeline.name config)
        (Atmo_sim.Pipeline.throughput ~cost ~app_cycles:app
           ~driver_cycles:cost.Cost.driver_per_packet
           ~device_cap:cost.Cost.nic_line_rate_pps config
         /. 1e6))
    [ Atmo_sim.Pipeline.Atmo_driver; Atmo_sim.Pipeline.Atmo_c2;
      Atmo_sim.Pipeline.Atmo_c1 1; Atmo_sim.Pipeline.Atmo_c1 32 ]
