(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) from this reproduction's mechanisms — the verification
   obligation suites for Tables 1-2 / Figures 2-3 and the calibrated
   cycle model plus the functional data paths for Table 3 / Figures 4-7.
   See EXPERIMENTS.md for the paper-vs-measured record.

   Usage: main.exe [table1|table2|table3|fig2|...|fig7|bechamel|all] *)

module Cost = Atmo_sim.Cost
module Pipeline = Atmo_sim.Pipeline
module Clock = Atmo_hw.Clock
module Runner = Atmo_verif.Runner
module Catalog = Atmo_verif.Catalog
module Effort = Atmo_verif.Effort
module Obligation = Atmo_verif.Obligation
module Incremental = Atmo_verif.Incremental
module Kernel = Atmo_core.Kernel
module Syscall = Atmo_spec.Syscall
module Message = Atmo_pm.Message
module Page_state = Atmo_pmem.Page_state
module Pte = Atmo_hw.Pte_bits

let cost = Cost.default
let line fmt = Format.printf (fmt ^^ "@.")
let section title = line "@.== %s ==@." title

(* Machine-readable result files: every bench with an acceptance floor
   writes BENCH_<name>.json; [report] merges them into
   BENCH_summary.json and enforces the floors. *)
module J = Atmo_util.Minijson

let write_bench_json file obj =
  J.to_file file (J.Obj obj);
  line "  wrote %s" file

(* ------------------------------------------------------------------ *)
(* Table 1: proof effort across systems                                *)

let table1 () =
  section "Table 1: proof effort for existing verification projects";
  line "%-12s %-10s %-14s %10s" "Name" "Language" "Spec Lang." "Ratio";
  List.iter
    (fun (r : Effort.row) ->
      line "%-12s %-10s %-14s %9.1f:1" r.Effort.system r.Effort.language
        r.Effort.spec_language r.Effort.ratio)
    Effort.table1;
  match Effort.measure_repo ~root:"." with
  | Some s ->
    line "";
    line "this reproduction (measured): %d spec/check lines, %d exec lines, %d test lines"
      s.Effort.spec_lines s.Effort.exec_lines s.Effort.test_lines;
    line "check-to-code ratio: %.2f:1 (the paper's Atmosphere: 3.32:1)" s.Effort.ratio
  | None -> line "(repo sources not reachable; skipping measured ratio)"

(* ------------------------------------------------------------------ *)
(* Table 2: verification time                                          *)

let parallel_threads =
  (* the paper reports 1- and 8-thread verification; parallel discharge
     only makes sense when the host actually has cores to give *)
  min 8 (Domain.recommended_domain_count ())

let run_suite name obls =
  let r1 = Runner.run ~threads:1 obls in
  let par =
    if parallel_threads >= 2 then
      let r = Runner.run ~threads:parallel_threads obls in
      Printf.sprintf "%d threads %8.1f ms" parallel_threads (r.Runner.wall_s *. 1000.)
    else "(single-core host: parallel discharge skipped)"
  in
  let status = if Runner.all_ok r1 then "ok" else "FAIL" in
  line "%-22s %4d obligations   1 thread %8.1f ms   %s   %s" name
    (List.length obls) (r1.Runner.wall_s *. 1000.) par status;
  List.iter
    (fun (f : Obligation.result) ->
      line "    FAILED %s: %s" f.Obligation.name
        (Option.value ~default:"?" f.Obligation.detail))
    (Runner.failures r1);
  r1

let table2 () =
  section "Table 2: verification time (discharge of the obligation suites)";
  line "(paper, CloudLab c220g5, 1 thread / 8 threads:";
  line "   NrOS page table 1m52s / 51s      (5329 proof, 400 exec, 13.3)";
  line "   Atmo page table 33s / -          (2168 proof, 496 exec, 4.37)";
  line "   Mimalloc 8m12s / 1m40s           (13703 proof, 3178 exec, 4.3)";
  line "   VeriSMo 61m24s / 12m11s          (16101 proof, 7915 exec, 2.0)";
  line "   Atmosphere 3m29s / 1m07s         (20098 proof, 6048 exec, 3.32)";
  line " Mimalloc and VeriSMo are external artifacts: reported only.";
  line " This reproduction discharges executable obligations instead of SMT";
  line " queries, so absolute times differ; the flat-vs-recursive ordering is";
  line " the result under test.)";
  line "";
  let pt = Catalog.build_pt ~mappings:4096 in
  let nros = Catalog.pt_obligations_recursive pt in
  let flat = Catalog.pt_obligations_flat pt in
  let r_nros = run_suite "NrOS-style page table" nros in
  let r_flat = run_suite "Atmo page table (flat)" flat in
  (match Catalog.build_world ~scale:6 with
   | Error msg -> line "full suite failed to build: %s" msg
   | Ok (k, init) ->
     let suite = Catalog.suite_for ~scale:6 k in
     Incremental.arm ();
     Fun.protect ~finally:Incremental.disarm (fun () ->
         let r_full = Incremental.run ~threads:1 suite in
         line "%-22s %4d obligations   1 thread %8.1f ms   %s" "Atmosphere (full)"
           (List.length suite)
           (r_full.Runner.wall_s *. 1000.)
           (if Runner.all_ok r_full then "ok" else "FAIL");
         (* the incremental column: one yield, then re-check only what
            the transition dirtied (see `bench verif` for the gated run) *)
         ignore (Kernel.step k ~thread:init Syscall.Yield);
         let r_inc = Incremental.run ~threads:1 suite in
         line
           "%-22s %4d obligations   1 thread %8.1f ms   re-checked %d, reused %d cached"
           "Atmosphere (incremental)" (List.length suite)
           (r_inc.Runner.wall_s *. 1000.)
           r_inc.Runner.rechecked r_inc.Runner.reused));
  line "";
  (* compare the two obligations both formulations share *)
  let time_of r names =
    List.fold_left
      (fun acc (x : Obligation.result) ->
        if List.exists (fun n -> x.Obligation.name = n) names then
          acc +. x.Obligation.elapsed_s
        else acc)
      0. r.Runner.results
  in
  let flat_t = time_of r_flat [ "pt/refinement"; "pt/structure" ] in
  let nros_t = time_of r_nros [ "nros_pt/refinement"; "nros_pt/structure" ] in
  line "flat / recursive page-table check-time ratio: %.2fx faster flat"
    (nros_t /. Float.max 1e-9 flat_t);
  line "(paper: Atmosphere's page table verifies >3x faster than NrOS's on one thread)";
  (* the same ablation on the container tree: ghost-field (flat)
     invariants vs structural re-derivation *)
  (match Catalog.build_tree ~depth:40 ~fanout:4 with
   | Error msg -> line "tree world failed: %s" msg
   | Ok tree ->
     let r_tf = run_suite "container tree (flat)" (Catalog.pm_tree_obligations_flat tree) in
     let r_tr =
       run_suite "container tree (recursive)" (Catalog.pm_tree_obligations_recursive tree)
     in
     line "container-tree ablation: flat %.2f ms vs recursive %.2f ms"
       (Runner.total_check_time r_tf *. 1000.)
       (Runner.total_check_time r_tr *. 1000.);
     line "(exhaustive evaluation of the flat forall-c-forall-d quantifiers is not";
     line " necessarily cheaper than one structural derivation: the paper's flat";
     line " advantage is about SMT proof effort, which the page-table ablation above";
     line " mirrors; see EXPERIMENTS.md)")

(* ------------------------------------------------------------------ *)
(* Ablation: the big-lock design under SMP                             *)

let ablation () =
  section "Ablation: multiprocessor scaling under the big kernel lock (§3)";
  line "(the paper chooses a big lock to simplify verification; this measures";
  line " what that choice costs: kernel-heavy work saturates at the lock,";
  line " user-heavy work scales with CPUs)";
  line "";
  let boot_params =
    { Kernel.default_boot with Kernel.cpus = Atmo_util.Iset.of_range ~lo:0 ~hi:8 }
  in
  let run ~cpus ~think =
    match Kernel.boot boot_params with
    | Error _ -> None
    | Ok (k, init) ->
      let threads =
        init
        :: List.init (cpus - 1) (fun _ ->
               match Kernel.step k ~thread:init Syscall.New_thread with
               | Syscall.Rptr t -> t
               | _ -> init)
      in
      let programs =
        List.map
          (fun thread ->
            { Atmo_sim.Smp.thread; think_cycles = think; call_of = (fun _ -> Syscall.Yield) })
          threads
      in
      (match Atmo_sim.Smp.run k ~cost ~cpus ~programs ~iterations:200 with
       | Ok s -> Some s
       | Error _ -> None)
  in
  let show label think =
    line "-- %s (think %d cycles per kernel entry) --" label think;
    List.iter
      (fun cpus ->
        match run ~cpus ~think with
        | Some s ->
          line "  %d CPU%s %8.2f M syscalls/s   lock wait %5.1f%% of wall" cpus
            (if cpus = 1 then " " else "s")
            (Atmo_sim.Smp.throughput s /. 1e6)
            (100. *. float_of_int s.Atmo_sim.Smp.lock_wait_cycles
             /. float_of_int (max 1 (s.Atmo_sim.Smp.wall_cycles * cpus)))
        | None -> line "  %d CPUs: run failed" cpus)
      [ 1; 2; 4; 8 ]
  in
  show "kernel-heavy" 100;
  show "balanced" 2_000;
  show "user-heavy" 20_000

(* ------------------------------------------------------------------ *)
(* Table 3: IPC and mapping latency                                    *)

let table3 () =
  section "Table 3: latency of communication and typical system calls (cycles)";
  line "%-14s %12s %8s" "System call" "Atmosphere" "seL4";
  line "%-14s %12d %8d" "Call/reply" (Cost.atmo_call_reply cost)
    (Atmo_baselines.Sel4.call_reply_cycles cost);
  line "%-14s %12d %8d" "Map a page" cost.Cost.map_page
    (Atmo_baselines.Sel4.map_page_cycles cost);
  line "(paper: call/reply 1058 vs 1026; map 1984 vs 2650)";
  (* sanity: drive the functional kernel through the same paths, and
     record per-pair host latency in an Atmo_obs histogram so the table
     reports the distribution, not just the mean *)
  (match Kernel.boot Kernel.default_boot with
   | Error _ -> ()
   | Ok (k, init) ->
     let hist = Atmo_obs.Metrics.Histogram.make "bench/mmap_pair_ns" in
     let t0 = Unix.gettimeofday () in
     let n = 20000 in
     (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
      | Syscall.Rptr _ ->
        for i = 0 to n - 1 do
          let p0 = Unix.gettimeofday () in
          ignore
            (Kernel.step k ~thread:init
               (Syscall.Mmap
                  { va = 0x4000_0000; count = 1; size = Page_state.S4k; perm = Pte.perm_rw }));
          ignore
            (Kernel.step k ~thread:init
               (Syscall.Munmap { va = 0x4000_0000; count = 1; size = Page_state.S4k }));
          Atmo_obs.Metrics.Histogram.observe hist
            (int_of_float ((Unix.gettimeofday () -. p0) *. 1e9));
          ignore i
        done;
        line "(functional model: %d mmap+munmap pairs in %.1f ms)" n
          ((Unix.gettimeofday () -. t0) *. 1000.);
        line "host latency per pair (ns, log2 buckets): p50 %d  p90 %d  p99 %d  max %d"
          (Atmo_obs.Metrics.Histogram.p50 hist)
          (Atmo_obs.Metrics.Histogram.p90 hist)
          (Atmo_obs.Metrics.Histogram.p99 hist)
          (Atmo_obs.Metrics.Histogram.max_value hist)
      | _ -> ()))

(* ------------------------------------------------------------------ *)
(* Figure 2: per-function verification time                            *)

let fig2 () =
  section "Figure 2: verification time for each function (per-obligation discharge)";
  match Catalog.full_suite ~scale:6 with
  | Error msg -> line "suite failed to build: %s" msg
  | Ok suite ->
    let report = Runner.run ~threads:1 suite in
    let sorted =
      List.sort
        (fun (a : Obligation.result) b -> compare b.Obligation.elapsed_s a.Obligation.elapsed_s)
        report.Runner.results
    in
    let worst = match sorted with [] -> 1e-9 | r :: _ -> r.Obligation.elapsed_s in
    List.iter
      (fun (r : Obligation.result) ->
        let bar = int_of_float (40. *. r.Obligation.elapsed_s /. worst) in
        line "%-32s %9.3f ms %s%s" r.Obligation.name (r.Obligation.elapsed_s *. 1000.)
          (String.make (max bar 1) '#')
          (if r.Obligation.ok then "" else "  FAIL"))
      sorted;
    line "";
    line "total: %.1f ms over %d obligations (paper: all functions < 20 s, most < 4 s)"
      (Runner.total_check_time report *. 1000.)
      (List.length sorted);
    (* scaling: discharge time as the kernel state grows — the flat
       formulations keep this near-linear *)
    line "";
    line "state-invariant discharge time vs world scale:";
    List.iter
      (fun scale ->
        match Catalog.build_world ~scale with
        | Error msg -> line "  scale %2d: %s" scale msg
        | Ok (k, _) ->
          let r = Runner.run ~threads:1 (Catalog.kernel_obligations k) in
          line "  scale %2d (%3d containers): %7.2f ms" scale
            (Atmo_pm.Perm_map.cardinal k.Kernel.pm.Atmo_pm.Proc_mgr.cntr_perms)
            (Runner.total_check_time r *. 1000.))
      [ 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------------ *)
(* Figure 3: development history                                       *)

let fig3 () =
  section "Figure 3: commit history (reconstruction of the three versions)";
  line "%-6s %-8s %10s %10s" "month" "version" "exec LoC" "proof LoC";
  List.iter
    (fun (p : Effort.month_point) ->
      line "%-6d v%-7d %10d %10d  %s" p.Effort.month p.Effort.version p.Effort.exec_loc
        p.Effort.proof_loc
        (String.make (p.Effort.proof_loc / 600) '*'))
    Effort.fig3_series;
  line "(clean-slate rewrites at months 2 and 10; v3 starts from ~50%% of v2's code)"

(* ------------------------------------------------------------------ *)
(* Figure 4: ixgbe driver performance                                  *)

let packet_configs =
  [ Pipeline.Atmo_driver; Pipeline.Atmo_c2; Pipeline.Atmo_c1 1; Pipeline.Atmo_c1 32 ]

let fig4 () =
  section "Figure 4: ixgbe driver performance (64B UDP, Mpps per core)";
  let app = 56 (* echo-style benchmark app per packet *) in
  let drv = cost.Cost.driver_per_packet in
  let cap = cost.Cost.nic_line_rate_pps in
  line "%-14s %8.2f Mpps" "linux"
    (Atmo_baselines.Linux_model.packet_pps cost ~app_cycles:app /. 1e6);
  line "%-14s %8.2f Mpps" "dpdk"
    (Atmo_baselines.Dpdk_model.packet_pps cost ~app_cycles:app /. 1e6);
  List.iter
    (fun config ->
      line "%-14s %8.2f Mpps" (Pipeline.name config)
        (Pipeline.throughput ~cost ~app_cycles:app ~driver_cycles:drv ~device_cap:cap
           config
         /. 1e6))
    packet_configs;
  line "(paper: linux 0.89; dpdk/atmo-driver/atmo-c2 at 14.2 line rate;";
  line " atmo-c1-b1 2.3; atmo-c1-b32 11.1)";
  (* exercise the functional NIC path: frames through rings and IOMMU *)
  let frames = 2000 in
  let mem = Atmo_hw.Phys_mem.create ~page_count:1024 in
  let iommu = Atmo_hw.Iommu.create mem in
  let clock = Clock.create () in
  (* identity-mapped IOMMU domain over the buffer arena *)
  let alloc = Atmo_pmem.Page_alloc.create mem ~reserved_frames:0 in
  (match Atmo_pt.Page_table.create mem alloc with
   | Error _ -> ()
   | Ok pt ->
     let map_identity addr =
       ignore (Atmo_pt.Page_table.map_4k pt ~vaddr:addr ~frame:addr ~perm:Pte.perm_rw)
     in
     let ring_page =
       match Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User with
       | Some a -> a
       | None -> 0
     in
     let bufs =
       Array.init 64 (fun _ ->
           match Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User with
           | Some a -> a
           | None -> 0)
     in
     map_identity ring_page;
     Array.iter map_identity bufs;
     Atmo_hw.Iommu.attach iommu ~device:0 ~root:(Atmo_pt.Page_table.cr3 pt);
     let nic = Atmo_drivers.Ixgbe.create mem iommu ~device:0 ~clock ~cost in
     (match
        Atmo_drivers.Ixgbe.setup_rx nic ~ring_iova:ring_page
          ~buffers:(Array.map (fun a -> (a, 2048)) bufs)
      with
      | Error e -> line "ixgbe setup failed: %s" (Atmo_devmodel.Fault.error_to_string e)
      | Ok () ->
        let flow = Atmo_net.Packet.flow_of_ints ~src:1 ~dst:2 ~sport:1000 ~dport:53 in
        let received = ref 0 in
        for _ = 1 to frames do
          ignore
            (Atmo_drivers.Ixgbe.wire_deliver nic
               (Atmo_net.Packet.build flow ~payload:(Bytes.make 22 'x')));
          received := !received + List.length (Atmo_drivers.Ixgbe.rx_burst nic ~max:32)
        done;
        line "(functional path: %d/%d frames through descriptor rings + IOMMU, %d drops)"
          !received frames
          (Atmo_drivers.Ixgbe.rx_drops nic)))

(* ------------------------------------------------------------------ *)
(* Figure 5: NVMe driver performance                                   *)

let fig5 () =
  section "Figure 5: NVMe driver performance (4KiB sequential, KIOPS per core)";
  let app = 300 (* submission + completion handling per IO *) in
  let drv = cost.Cost.spdk_per_io (* polled NVMe driver per IO *) in
  let show op cap penalty =
    line "-- sequential %s --" op;
    List.iter
      (fun batch ->
        line "  batch %-3d  linux %8.1f   spdk %8.1f   %s" batch
          ((if op = "read" then Atmo_baselines.Linux_model.nvme_read_iops cost ~batch
            else Atmo_baselines.Linux_model.nvme_write_iops cost ~batch)
           /. 1e3)
          ((if op = "read" then Atmo_baselines.Dpdk_model.nvme_read_iops cost ~batch
            else Atmo_baselines.Dpdk_model.nvme_write_iops cost ~batch)
           /. 1e3)
          (String.concat "   "
             (List.map
                (fun config ->
                  let capped = cap /. penalty in
                  Printf.sprintf "%s %8.1f" (Pipeline.name config)
                    (Pipeline.throughput ~cost ~app_cycles:app ~driver_cycles:drv
                       ~device_cap:capped config
                     /. 1e3))
                [ Pipeline.Atmo_driver; Pipeline.Atmo_c2; Pipeline.Atmo_c1 batch ])))
      [ 1; 32 ]
  in
  show "read" cost.Cost.nvme_read_cap_iops 1.0;
  show "write" cost.Cost.nvme_write_cap_iops (1. +. cost.Cost.nvme_atmo_write_penalty);
  line "(paper: reads linux 13K/141K, atmo=spdk at device max;";
  line " writes linux within 3%% of 256K, atmo ~232K: 10%% overhead)";
  (* functional device: submit/poll through the queue-pair model *)
  let clock = Clock.create () in
  let dev = Atmo_drivers.Nvme.create ~clock ~cost ~capacity_blocks:4096 in
  let block = Bytes.make Atmo_drivers.Nvme.block_bytes 'd' in
  let writes = 256 in
  for lba = 0 to writes - 1 do
    ignore (Atmo_drivers.Nvme.submit_write dev ~lba ~data:block)
  done;
  let completed = List.length (Atmo_drivers.Nvme.wait_all dev) in
  line "(functional path: %d/%d writes completed in %.2f virtual ms)" completed writes
    (Clock.seconds clock *. 1e3)

(* ------------------------------------------------------------------ *)
(* Figure 6: Maglev and httpd                                          *)

let maglev_work = 150 (* per-packet lookup + header rewrite *)

let fig6 () =
  section "Figure 6: Maglev load balancer (Mpps) and httpd (Krps)";
  let drv = cost.Cost.driver_per_packet in
  let cap = cost.Cost.nic_line_rate_pps in
  line "-- maglev --";
  line "%-14s %8.2f Mpps" "linux"
    (Atmo_baselines.Linux_model.packet_pps cost ~app_cycles:maglev_work /. 1e6);
  line "%-14s %8.2f Mpps" "dpdk"
    (Atmo_baselines.Dpdk_model.packet_pps cost ~app_cycles:maglev_work /. 1e6);
  List.iter
    (fun config ->
      line "%-14s %8.2f Mpps" (Pipeline.name config)
        (Pipeline.throughput ~cost ~app_cycles:maglev_work ~driver_cycles:drv
           ~device_cap:cap config
         /. 1e6))
    [ Pipeline.Atmo_c2; Pipeline.Atmo_c1 1; Pipeline.Atmo_c1 32 ];
  line "(paper: linux 1.0; dpdk 9.72; atmo-c2 13.3; atmo-c1-b1 1.66; atmo-c1-b32 8.8)";
  (* functional maglev: steer real frames, report balance *)
  let backends = List.init 8 (fun i -> Printf.sprintf "backend-%d" i) in
  let lb = Atmo_net.Maglev.create ~backends ~table_size:65537 in
  let counts = Hashtbl.create 8 in
  for i = 0 to 9999 do
    let flow =
      Atmo_net.Packet.flow_of_ints ~src:(0x0a000000 + i) ~dst:0x0b000001
        ~sport:(1024 + (i mod 50000)) ~dport:80
    in
    let frame = Atmo_net.Packet.build flow ~payload:Bytes.empty in
    match Atmo_net.Maglev.lookup_packet lb frame with
    | Some b -> Hashtbl.replace counts b (1 + Option.value ~default:0 (Hashtbl.find_opt counts b))
    | None -> ()
  done;
  let mn = Hashtbl.fold (fun _ v acc -> min v acc) counts max_int in
  let mx = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
  line "(functional path: 10000 flows over %d backends, min/max per backend %d/%d)"
    (List.length backends) mn mx;
  line "";
  line "-- httpd --";
  let request_work = 20000 in
  line "%-14s %8.1f Krps" "nginx(linux)"
    (Atmo_baselines.Nginx_model.requests_per_second cost ~request_work /. 1e3);
  line "%-14s %8.1f Krps" "atmo-httpd"
    (cost.Cost.frequency_hz
     /. float_of_int (request_work + cost.Cost.atmo_httpd_overhead)
     /. 1e3);
  line "(paper: nginx 70.9 Krps; httpd 99.4 Krps)";
  (* functional httpd: serve real requests round-robin over connections *)
  let server =
    Atmo_net.Httpd.create ~routes:[ ("/", "<html>hello</html>"); ("/about", "<html>atmo</html>") ]
  in
  let conns = List.init 20 (fun _ -> Atmo_net.Httpd.open_conn server) in
  List.iteri
    (fun i c ->
      for _ = 0 to 4 do
        Atmo_net.Httpd.submit c
          (Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\n\r\n"
             (if i mod 2 = 0 then "/" else "/about"))
      done)
    conns;
  let served = ref 0 in
  for _round = 0 to 5 do
    served := !served + Atmo_net.Httpd.poll_round server conns
  done;
  line "(functional path: %d requests served over %d connections)" !served
    (List.length conns)

(* ------------------------------------------------------------------ *)
(* Figure 7: key-value store                                           *)

let fig7 () =
  section "Figure 7: key-value store (Mops, GET-heavy)";
  let kv_cycles ~table_entries ~kv_bytes =
    (* base lookup + per-byte handling + locality penalty for the table
       that exceeds the last-level cache *)
    180 + (2 * 2 * kv_bytes) + (if table_entries > 4_000_000 then 60 else 0)
  in
  let drv = cost.Cost.driver_per_packet in
  let cap = cost.Cost.nic_line_rate_pps in
  List.iter
    (fun table_entries ->
      line "-- table with %dM entries --" (table_entries / 1_000_000);
      List.iter
        (fun kv_bytes ->
          let app = kv_cycles ~table_entries ~kv_bytes in
          line "  <%2dB,%2dB>  linux-dpdk %6.2f   atmo-c2 %6.2f   atmo-c1-b32 %6.2f"
            kv_bytes kv_bytes
            (Atmo_baselines.Dpdk_model.packet_pps cost ~app_cycles:app /. 1e6)
            (Pipeline.throughput ~cost ~app_cycles:app ~driver_cycles:drv
               ~device_cap:cap Pipeline.Atmo_c2
             /. 1e6)
            (Pipeline.throughput ~cost ~app_cycles:app ~driver_cycles:drv
               ~device_cap:cap (Pipeline.Atmo_c1 32)
             /. 1e6))
        [ 8; 16; 32 ])
    [ 1_000_000; 8_000_000 ];
  line "(shape: atmo-c2 >= dpdk > atmo-c1-b32; larger kv sizes and the 8M table cost";
  line " throughput via per-byte work and cache locality, as in the paper)";
  (* functional store: zipfian GET-heavy traffic against the real table *)
  let store = Atmo_net.Kv_store.create ~entries:100_003 in
  let w = Atmo_net.Workload.create ~seed:11 ~keys:50_000 (Atmo_net.Workload.Zipfian 0.99) in
  let hits = ref 0 and sets = ref 0 and gets = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Atmo_net.Workload.Set k ->
        incr sets;
        ignore
          (Atmo_net.Kv_store.set store
             ~key:(Atmo_net.Workload.key_bytes k ~size:16)
             ~value:(Bytes.make 16 'v'))
      | Atmo_net.Workload.Get k ->
        incr gets;
        if Atmo_net.Kv_store.get store ~key:(Atmo_net.Workload.key_bytes k ~size:16) <> None
        then incr hits)
    (Atmo_net.Workload.ops w ~read_ratio:0.9 ~count:100_000);
  let max_probe, mean_probe = Atmo_net.Kv_store.probe_stats store in
  line
    "(functional path: 100000 zipfian(0.99) ops, %d sets %d gets %d hits; probes max %d mean %.2f at load %.2f)"
    !sets !gets !hits max_probe mean_probe
    (float_of_int (Atmo_net.Kv_store.length store)
     /. float_of_int (Atmo_net.Kv_store.capacity store))

(* ------------------------------------------------------------------ *)
(* Observability overhead: the flight recorder on vs off               *)

(* Always-on tracing at production cost, measured on the kv-store demo:
   with the sink disabled every tracepoint is one mask load; with the
   flight recorder installed the zero-alloc in-arena emit path must stay
   within 2x of the untraced run (overhead_pct <= 100, gated by
   [report]).  The ring is sized from a calibration run so not a single
   event is dropped (events_dropped = 0, also gated), and the per-kind
   emit counters must account for every record exactly.  Tracing costs
   host time only: the kv virtual clock and per-request latencies must
   be bit-identical on vs off. *)
let obs () =
  section "Observability: tracing overhead on vs off (host time; model cycles)";
  let module Kv = Atmo_workloads.Kv_demo in
  let requests = 200 in
  let reps = 10 in
  let time_reps () =
    let t0 = Unix.gettimeofday () in
    let last = ref None in
    for _ = 1 to reps do
      last := Some (Kv.run ~requests ())
    done;
    (Unix.gettimeofday () -. t0, Option.get !last)
  in
  (* calibration: one traced run into a throwaway ring; the exact
     per-kind emit counters give the full-run event rate, from which the
     measured ring is sized so all [reps] runs fit with zero drops even
     if every event lands on one CPU *)
  let probe =
    Atmo_obs.Flight.create ~cpus:2 ~slots:65536 ~slot_size:Atmo_obs.Event.slot_bytes
  in
  Atmo_obs.Sink.install (Atmo_obs.Sink.Flight probe);
  Atmo_obs.Span.reset ();
  ignore (Kv.run ~requests ());
  let per_rep = ref 0 in
  for tag = 1 to Atmo_obs.Event.tag_count do
    per_rep := !per_rep + Atmo_obs.Sink.emitted_count ~tag
  done;
  Atmo_obs.Sink.install Atmo_obs.Sink.Disabled;
  let slots = ref 1024 in
  while !slots < !per_rep * reps do
    slots := !slots * 2
  done;
  line "calibration: %d events per run -> ring of %d slots/cpu for %d runs" !per_rep
    !slots reps;
  Atmo_obs.Metrics.reset ();
  Atmo_obs.Span.reset ();
  let off_s, off = time_reps () in
  Atmo_obs.Metrics.reset ();
  Atmo_obs.Span.reset ();
  let recorder =
    Atmo_obs.Flight.create ~cpus:2 ~slots:!slots ~slot_size:Atmo_obs.Event.slot_bytes
  in
  Atmo_obs.Sink.install (Atmo_obs.Sink.Flight recorder);
  let on_s, on = time_reps () in
  let records = Atmo_obs.Sink.records () in
  let dropped = Atmo_obs.Sink.dropped () in
  let emitted_total = ref 0 in
  for tag = 1 to Atmo_obs.Event.tag_count do
    emitted_total := !emitted_total + Atmo_obs.Sink.emitted_count ~tag
  done;
  (* each packed span pair decodes into a begin and an end record, so
     the lossless-accounting identity is records = emitted + pairs *)
  let pairs = Atmo_obs.Sink.emitted_count ~tag:Atmo_obs.Event.tag_span_pair in
  Atmo_obs.Sink.install Atmo_obs.Sink.Disabled;
  Atmo_obs.Sink.set_clock (fun () -> 0);
  Atmo_obs.Span.reset ();
  let live = List.length records in
  let accounting = live = !emitted_total + pairs && dropped = 0 in
  line "disabled sink: %8.2f ms for %d runs" (off_s *. 1000.) reps;
  line "flight sink:   %8.2f ms for %d runs  (%d events live, %d dropped)"
    (on_s *. 1000.) reps live dropped;
  line "host-time overhead when enabled: %.1f%%"
    (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s);
  line "lossless accounting: %d records = %d emitted + %d span pairs, 0 dropped: %b"
    live !emitted_total pairs accounting;
  let identical =
    off.Kv.end_cycles = on.Kv.end_cycles && off.Kv.latencies = on.Kv.latencies
  in
  line "cycle model: end %d vs %d, latencies identical: %b  -> identical: %b"
    off.Kv.end_cycles on.Kv.end_cycles
    (off.Kv.latencies = on.Kv.latencies)
    identical;
  line "(tracing must never move simulated time: 'identical: true' is the contract)";
  write_bench_json "BENCH_obs.json"
    [
      ("bench", J.Str "obs_overhead");
      ("requests", J.Num (float_of_int requests));
      ("runs", J.Num (float_of_int reps));
      ("ring_slots", J.Num (float_of_int !slots));
      ("disabled_ms", J.Num (off_s *. 1000.));
      ("flight_ms", J.Num (on_s *. 1000.));
      ("overhead_pct", J.Num (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s));
      ("events_live", J.Num (float_of_int live));
      ("events_dropped", J.Num (float_of_int dropped));
      ("accounting_exact", J.Bool accounting);
      ("cycle_identity", J.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Sanitizer overhead: atmo-san armed vs off                           *)

(* Same contract as the flight recorder: when disarmed the hooks are a
   single flag load, and when armed the shadow checks cost host time
   only — the simulated cycle model must not move.  A clean workload
   must also report zero violations. *)
let san () =
  section "Sanitizer: atmo-san overhead on vs off (host time; model cycles)";
  let workload () =
    match Kernel.boot Kernel.default_boot with
    | Error _ -> None
    | Ok (k, init) ->
      let t2 =
        match Kernel.step k ~thread:init Syscall.New_thread with
        | Syscall.Rptr t -> t
        | _ -> init
      in
      (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
       | Syscall.Rptr ep ->
         Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2
           (fun th -> Atmo_pm.Thread.set_slot th 0 (Some ep))
       | _ -> ());
      let programs =
        [
          { Atmo_sim.Smp.thread = t2; think_cycles = 600;
            call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
          { Atmo_sim.Smp.thread = init; think_cycles = 800;
            call_of = (fun i -> Syscall.Send { slot = 0; msg = Message.scalars_only [ i ] }) };
        ]
      in
      (match Atmo_sim.Smp.run k ~cost ~cpus:2 ~programs ~iterations:500 with
       | Ok s -> Some (s.Atmo_sim.Smp.wall_cycles, s.Atmo_sim.Smp.lock_wait_cycles)
       | Error _ -> None)
  in
  let reps = 30 in
  let time_reps () =
    let t0 = Unix.gettimeofday () in
    let cycles = ref None in
    for _ = 1 to reps do
      cycles := workload ()
    done;
    (Unix.gettimeofday () -. t0, !cycles)
  in
  Atmo_san.Runtime.disarm ();
  let off_s, off_cycles = time_reps () in
  Atmo_san.Runtime.arm ();
  let on_s, on_cycles = time_reps () in
  let checked = Atmo_san.Memsan.checked () in
  let violations = Atmo_san.Report.count () in
  Atmo_san.Runtime.disarm ();
  line "sanitizer off: %8.2f ms for %d runs" (off_s *. 1000.) reps;
  line "sanitizer on:  %8.2f ms for %d runs  (%d accesses checked, %d violations)"
    (on_s *. 1000.) reps checked violations;
  line "host-time overhead when armed: %.1f%%"
    (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s);
  let identical =
    match (off_cycles, on_cycles) with
    | Some (w0, l0), Some (w1, l1) ->
      line "cycle model (wall, lock-wait): off (%d, %d)  on (%d, %d)  identical: %b" w0 l0
        w1 l1
        (w0 = w1 && l0 = l1);
      w0 = w1 && l0 = l1
    | _ ->
      line "cycle model: workload failed";
      false
  in
  line "(checking must never move simulated time, and a clean run must stay clean)";
  write_bench_json "BENCH_san.json"
    [
      ("bench", J.Str "san_overhead");
      ("runs", J.Num (float_of_int reps));
      ("disarmed_ms", J.Num (off_s *. 1000.));
      ("armed_ms", J.Num (on_s *. 1000.));
      ("overhead_pct", J.Num (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s));
      ("accesses_checked", J.Num (float_of_int checked));
      ("violations", J.Num (float_of_int violations));
      ("cycle_identity", J.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* Software TLB: walk-vs-hit cost, end-to-end on/off, bit-identity     *)

let tlb () =
  section "Software TLB: walk cost vs hit cost, on/off end-to-end, bit-identity";
  let module Tlb = Atmo_hw.Tlb in
  let module Mmu = Atmo_hw.Mmu in
  let module Page_table = Atmo_pt.Page_table in
  (* -- translation cost: page-table loads per warm resolve ----------- *)
  let pages = 32 and passes = 20 in
  let with_pt f =
    let mem = Atmo_hw.Phys_mem.create ~page_count:4096 in
    let alloc = Atmo_pmem.Page_alloc.create mem ~reserved_frames:0 in
    match Page_table.create mem alloc with
    | Error _ -> 0
    | Ok pt ->
      for i = 0 to pages - 1 do
        match Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User with
        | Some frame ->
          ignore
            (Page_table.map_4k pt ~vaddr:(0x4000_0000 + (i * 4096)) ~frame
               ~perm:Pte.perm_rw)
        | None -> ()
      done;
      f pt
  in
  let loads_of_loop pt =
    let before = Mmu.walk_steps () in
    for _pass = 1 to passes do
      for i = 0 to pages - 1 do
        ignore (Page_table.resolve pt ~vaddr:(0x4000_0000 + (i * 4096)))
      done
    done;
    Mmu.walk_steps () - before
  in
  Tlb.set_enabled false;
  let loads_off = with_pt loads_of_loop in
  Tlb.set_enabled true;
  let loads_on = with_pt loads_of_loop in
  let n = pages * passes in
  line "warm resolve loop (%d translations):" n;
  line "  TLB off: %6d page-table loads  (%.2f per translation)" loads_off
    (float_of_int loads_off /. float_of_int n);
  line "  TLB on:  %6d page-table loads  (%.2f per translation)" loads_on
    (float_of_int loads_on /. float_of_int n);
  line "  reduction: %.1fx fewer loads  (acceptance floor: 5x)"
    (float_of_int loads_off /. Float.max 1. (float_of_int loads_on));
  let s = Tlb.cpu_stats () in
  line "  cpu tlb counters: %d hits, %d misses, %d evictions, %d invlpgs, %d flushes"
    s.Tlb.hits s.Tlb.misses s.Tlb.evictions s.Tlb.invlpgs s.Tlb.flushes;
  (* -- IPC round-trip with the TLB on vs off ------------------------- *)
  let workload () =
    match Kernel.boot Kernel.default_boot with
    | Error _ -> None
    | Ok (k, init) ->
      let t2 =
        match Kernel.step k ~thread:init Syscall.New_thread with
        | Syscall.Rptr t -> t
        | _ -> init
      in
      (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
       | Syscall.Rptr ep ->
         Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2
           (fun th -> Atmo_pm.Thread.set_slot th 0 (Some ep))
       | _ -> ());
      (* a user arena the loop translates every round, as a data-carrying
         IPC path would *)
      ignore
        (Kernel.step k ~thread:init
           (Syscall.Mmap { va = 0x4000_0000; count = 8; size = Page_state.S4k;
                           perm = Pte.perm_rw }));
      let programs =
        [
          { Atmo_sim.Smp.thread = t2; think_cycles = 600;
            call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
          { Atmo_sim.Smp.thread = init; think_cycles = 800;
            call_of =
              (fun i ->
                for p = 0 to 7 do
                  ignore
                    (Kernel.resolve_user k ~thread:init
                       ~vaddr:(0x4000_0000 + (p * 4096)))
                done;
                Syscall.Send { slot = 0; msg = Message.scalars_only [ i ] }) };
        ]
      in
      (match Atmo_sim.Smp.run k ~cost ~cpus:2 ~programs ~iterations:500 with
       | Ok st -> Some (st.Atmo_sim.Smp.wall_cycles, st.Atmo_sim.Smp.lock_wait_cycles)
       | Error _ -> None)
  in
  let reps = 30 in
  let time_reps () =
    let t0 = Unix.gettimeofday () in
    let cycles = ref None in
    for _ = 1 to reps do
      cycles := workload ()
    done;
    (Unix.gettimeofday () -. t0, !cycles)
  in
  Tlb.set_enabled false;
  let w0 = Mmu.walk_steps () in
  let off_s, off_cycles = time_reps () in
  let off_loads = Mmu.walk_steps () - w0 in
  Tlb.set_enabled true;
  let w1 = Mmu.walk_steps () in
  let on_s, on_cycles = time_reps () in
  let on_loads = Mmu.walk_steps () - w1 in
  line "IPC round-trip with per-round user translations (%d runs):" reps;
  line "  TLB off: %8.2f ms  %9d page-table loads" (off_s *. 1000.) off_loads;
  line "  TLB on:  %8.2f ms  %9d page-table loads  (%.1fx fewer)" (on_s *. 1000.)
    on_loads
    (float_of_int off_loads /. Float.max 1. (float_of_int on_loads));
  let ipc_identical =
    match (off_cycles, on_cycles) with
    | Some (wa, la), Some (wb, lb) ->
      line "  cycle model (wall, lock-wait): off (%d, %d)  on (%d, %d)  identical: %b" wa
        la wb lb
        (wa = wb && la = lb);
      wa = wb && la = lb
    | _ ->
      line "  cycle model: workload failed";
      false
  in
  (* -- ixgbe forwarding with the IOTLB on vs off --------------------- *)
  let forward () =
    let frames = 2000 in
    let mem = Atmo_hw.Phys_mem.create ~page_count:1024 in
    let iommu = Atmo_hw.Iommu.create mem in
    let clock = Clock.create () in
    let alloc = Atmo_pmem.Page_alloc.create mem ~reserved_frames:0 in
    match Atmo_pt.Page_table.create mem alloc with
    | Error _ -> None
    | Ok pt ->
      let page () =
        match Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User with
        | Some a -> a
        | None -> 0
      in
      let map_identity addr =
        ignore (Atmo_pt.Page_table.map_4k pt ~vaddr:addr ~frame:addr ~perm:Pte.perm_rw)
      in
      let ring_page = page () in
      let bufs = Array.init 64 (fun _ -> page ()) in
      map_identity ring_page;
      Array.iter map_identity bufs;
      Atmo_hw.Iommu.attach iommu ~device:0 ~root:(Atmo_pt.Page_table.cr3 pt);
      let nic = Atmo_drivers.Ixgbe.create mem iommu ~device:0 ~clock ~cost in
      (match
         Atmo_drivers.Ixgbe.setup_rx nic ~ring_iova:ring_page
           ~buffers:(Array.map (fun a -> (a, 2048)) bufs)
       with
       | Error _ -> None
       | Ok () ->
         let flow = Atmo_net.Packet.flow_of_ints ~src:1 ~dst:2 ~sport:1000 ~dport:53 in
         let received = ref 0 in
         let t0 = Unix.gettimeofday () in
         for _ = 1 to frames do
           ignore
             (Atmo_drivers.Ixgbe.wire_deliver nic
                (Atmo_net.Packet.build flow ~payload:(Bytes.make 22 'x')));
           received := !received + List.length (Atmo_drivers.Ixgbe.rx_burst nic ~max:32)
         done;
         Some (!received, frames, Unix.gettimeofday () -. t0))
  in
  Tlb.set_enabled false;
  let fwd_off = forward () in
  Tlb.set_enabled true;
  let fwd_on = forward () in
  let fwd_identical =
    match (fwd_off, fwd_on) with
    | Some (r0, f0, t0), Some (r1, f1, t1) ->
      line "ixgbe forwarding through the IOMMU:";
      line "  IOTLB off: %d/%d frames in %6.2f ms" r0 f0 (t0 *. 1000.);
      line "  IOTLB on:  %d/%d frames in %6.2f ms  (delivery identical: %b)" r1 f1
        (t1 *. 1000.) (r0 = r1);
      r0 = r1
    | _ ->
      line "ixgbe forwarding failed";
      false
  in
  (* -- bit-identity: randomized replay, hot vs cold ------------------ *)
  let rng = Random.State.make [| 0x71B |] in
  let identical =
    with_pt (fun pt ->
        let ok = ref true in
        for _step = 1 to 2000 do
          let vaddr =
            0x4000_0000 + (Random.State.int rng (pages * 2) * 4096)
            + Random.State.int rng 4096
          in
          if Random.State.int rng 10 = 0 then
            ignore (Page_table.unmap pt ~vaddr:(vaddr land lnot 4095));
          let hot = Page_table.resolve pt ~vaddr in
          let cold = Page_table.resolve_cold pt ~vaddr in
          let same =
            match (hot, cold) with
            | None, None -> true
            | Some (a : Mmu.translation), Some b ->
              a.Mmu.paddr = b.Mmu.paddr && a.Mmu.frame = b.Mmu.frame
              && a.Mmu.size = b.Mmu.size
            | _ -> false
          in
          if not same then ok := false
        done;
        if !ok then 1 else 0)
  in
  line "bit-identity (randomized map/unmap replay, hot vs cold): %s"
    (if identical = 1 then "identical" else "DIVERGED");
  write_bench_json "BENCH_tlb.json"
    [
      ("bench", J.Str "tlb");
      ("warm_loads_off", J.Num (float_of_int loads_off));
      ("warm_loads_on", J.Num (float_of_int loads_on));
      ( "load_reduction",
        J.Num (float_of_int loads_off /. Float.max 1. (float_of_int loads_on)) );
      ("ipc_cycle_identity", J.Bool ipc_identical);
      ("ixgbe_delivery_identity", J.Bool fwd_identical);
      ("replay_identity", J.Bool (identical = 1));
    ]

(* ------------------------------------------------------------------ *)
(* IPC fastpath: ping-pong with the fastpath on vs off                 *)

(* One round = the receiver parks in Recv, the sender rendezvous-sends
   and the CPU switches to the receiver.  The park is identical work in
   both configurations; the rendezvous send is the operation the
   fastpath rebuilds, so the bench reports it separately: total map
   operations (permission-map borrows/updates, each one host-level
   Imap traffic), the same past the 2-operation capability decode both
   paths share (thread borrow + endpoint borrow), allocation, and the
   per-round latency distribution.  The oracle test proves the two
   configurations leave bit-identical kernels, so every delta here is
   pure mechanism cost.  Emits BENCH_ipc.json for machines. *)
let ipc () =
  section "IPC ping-pong: fastpath on vs off (host time; map ops; allocation)";
  let rounds = 20000 in
  let decode_ops = 2 (* thread borrow + endpoint borrow, both paths *) in
  let borrow_total () =
    List.fold_left
      (fun acc (name, c) ->
        if String.length name >= 11 && String.sub name 0 11 = "pm/borrows/" then
          acc + Atmo_obs.Metrics.Counter.value c
        else acc)
      0
      (Atmo_obs.Metrics.all_counters ())
  in
  let counter name = Atmo_obs.Metrics.Counter.value (Atmo_obs.Metrics.counter name) in
  let run ~fastpath =
    Kernel.set_fastpath fastpath;
    match Kernel.boot Kernel.default_boot with
    | Error _ -> None
    | Ok (k, init) ->
      let t2 =
        match Kernel.step k ~thread:init Syscall.New_thread with
        | Syscall.Rptr t -> t
        | _ -> init
      in
      (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
       | Syscall.Rptr ep ->
         Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:t2
           (fun th -> Atmo_pm.Thread.set_slot th 0 (Some ep));
         Atmo_pm.Perm_map.update k.Kernel.pm.Atmo_pm.Proc_mgr.edpt_perms ~ptr:ep
           (fun e -> { e with Atmo_pm.Endpoint.refcount = e.Atmo_pm.Endpoint.refcount + 1 })
       | _ -> ());
      let hist =
        Atmo_obs.Metrics.Histogram.make
          (if fastpath then "bench/ipc_round_fast_ns" else "bench/ipc_round_slow_ns")
      in
      let fast0 = counter "ipc/fastpath" and slow0 = counter "ipc/slowpath" in
      (* pass 1: latency only, nothing but the two syscalls in the
         timed region *)
      let t0 = Unix.gettimeofday () in
      for i = 0 to rounds - 1 do
        let p0 = Unix.gettimeofday () in
        ignore (Kernel.step k ~thread:t2 (Syscall.Recv { slot = 0 }));
        ignore
          (Kernel.step k ~thread:init
             (Syscall.Send { slot = 0; msg = Message.scalars_only [ i ] }));
        Atmo_obs.Metrics.Histogram.observe hist
          (int_of_float ((Unix.gettimeofday () -. p0) *. 1e9))
      done;
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      let fast_hits = counter "ipc/fastpath" - fast0 in
      let slow_hits = counter "ipc/slowpath" - slow0 in
      (* pass 2: map-operation and allocation accounting *)
      let round_borrows0 = borrow_total () in
      let send_borrows = ref 0 and send_alloc = ref 0. in
      for i = 0 to rounds - 1 do
        ignore (Kernel.step k ~thread:t2 (Syscall.Recv { slot = 0 }));
        let b0 = borrow_total () in
        let a0 = Gc.minor_words () in
        ignore
          (Kernel.step k ~thread:init
             (Syscall.Send { slot = 0; msg = Message.scalars_only [ i ] }));
        send_alloc := !send_alloc +. (Gc.minor_words () -. a0);
        send_borrows := !send_borrows + (borrow_total () - b0)
      done;
      Some
        ( hist,
          wall_ms,
          fast_hits,
          slow_hits,
          borrow_total () - round_borrows0,
          !send_borrows,
          !send_alloc )
  in
  let off = run ~fastpath:false in
  let on = run ~fastpath:true in
  Kernel.set_fastpath true;
  match (on, off) with
  | Some (h1, w1, f1, s1, rb1, sb1, sa1), Some (h0, w0, f0, s0, rb0, sb0, sa0) ->
    let module H = Atmo_obs.Metrics.Histogram in
    let per r = float_of_int r /. float_of_int rounds in
    let show label h w f s rb sb sa =
      line "  %-13s %8.2f ms  p50 %5d ns  p90 %5d ns  p99 %6d ns" label w (H.p50 h)
        (H.p90 h) (H.p99 h);
      line "  %-13s fastpath %d  slowpath %d  map ops/round %.1f" "" f s (per rb);
      line "  %-13s rendezvous send: map ops %.1f  minor words %.1f" "" (per sb)
        (sa /. float_of_int rounds)
    in
    line "%d ping-pong rounds per configuration (round = park Recv + rendezvous Send):"
      rounds;
    show "fastpath off:" h0 w0 f0 s0 rb0 sb0 sa0;
    show "fastpath on: " h1 w1 f1 s1 rb1 sb1 sa1;
    let m0 = per sb0 -. float_of_int decode_ops in
    let m1 = per sb1 -. float_of_int decode_ops in
    let ratio_m = m0 /. Float.max 1e-9 m1 in
    let ratio_s = per sb0 /. Float.max 1e-9 (per sb1) in
    let ratio_a = sa0 /. Float.max 1. sa1 in
    line "  rendezvous machinery past the %d-op capability decode: %.1f vs %.1f map ops"
      decode_ops m0 m1;
    line "  -> %.2fx fewer map operations in the rendezvous machinery (floor: 2x)"
      ratio_m;
    line "  -> %.2fx fewer map operations, %.2fx fewer minor words per rendezvous send"
      ratio_s ratio_a;
    let json =
      Printf.sprintf
        {|{
  "bench": "ipc_pingpong",
  "rounds": %d,
  "decode_map_ops": %d,
  "fastpath_off": { "wall_ms": %.3f, "p50_ns": %d, "p90_ns": %d, "p99_ns": %d,
                    "fastpath_hits": %d, "slowpath_hits": %d,
                    "round_map_ops": %.2f, "send_map_ops": %.2f,
                    "send_minor_words": %.1f },
  "fastpath_on":  { "wall_ms": %.3f, "p50_ns": %d, "p90_ns": %d, "p99_ns": %d,
                    "fastpath_hits": %d, "slowpath_hits": %d,
                    "round_map_ops": %.2f, "send_map_ops": %.2f,
                    "send_minor_words": %.1f },
  "rendezvous_machinery_map_op_reduction": %.3f,
  "send_map_op_reduction": %.3f,
  "send_alloc_reduction": %.3f
}
|}
        rounds decode_ops w0 (H.p50 h0) (H.p90 h0) (H.p99 h0) f0 s0 (per rb0)
        (per sb0)
        (sa0 /. float_of_int rounds)
        w1 (H.p50 h1) (H.p90 h1) (H.p99 h1) f1 s1 (per rb1) (per sb1)
        (sa1 /. float_of_int rounds)
        ratio_m ratio_s ratio_a
    in
    let oc = open_out "BENCH_ipc.json" in
    output_string oc json;
    close_out oc;
    line "  wrote BENCH_ipc.json"
  | _ -> line "ipc workload failed to boot"

(* ------------------------------------------------------------------ *)
(* Span layer: the kv-store demo traced vs untraced                    *)

(* The request-path tracing of the span layer rides the same contract
   as the raw tracepoints: with the sink disabled every span site is a
   flag load, so the kv workload's virtual clock and per-request
   latencies must be bit-identical with tracing on.  The latency
   distribution is aggregated from per-shard histograms through
   [Histogram.merge] — the same mechanism [report] uses. *)
let span () =
  section "Span layer: kv-store demo traced vs untraced (host time; model cycles)";
  let module Kv = Atmo_workloads.Kv_demo in
  let requests = 200 in
  let reps = 10 in
  let time_reps () =
    let t0 = Unix.gettimeofday () in
    let last = ref None in
    for _ = 1 to reps do
      last := Some (Kv.run ~requests ())
    done;
    (Unix.gettimeofday () -. t0, Option.get !last)
  in
  Atmo_obs.Sink.install Atmo_obs.Sink.Disabled;
  Atmo_obs.Span.reset ();
  let off_s, off = time_reps () in
  Atmo_obs.Metrics.reset ();
  Atmo_obs.Span.reset ();
  let recorder =
    Atmo_obs.Flight.create ~cpus:2 ~slots:8192 ~slot_size:Atmo_obs.Event.slot_bytes
  in
  Atmo_obs.Sink.install (Atmo_obs.Sink.Flight recorder);
  let on_s, on = time_reps () in
  let records = Atmo_obs.Sink.records () in
  Atmo_obs.Sink.install Atmo_obs.Sink.Disabled;
  Atmo_obs.Sink.set_clock (fun () -> 0);
  Atmo_obs.Span.reset ();
  let count p = List.length (List.filter p records) in
  let spans =
    count (fun (r : Atmo_obs.Event.record) ->
        match r.Atmo_obs.Event.ev with Atmo_obs.Event.Span_begin _ -> true | _ -> false)
  in
  let edges =
    count (fun (r : Atmo_obs.Event.record) ->
        match r.Atmo_obs.Event.ev with Atmo_obs.Event.Causal _ -> true | _ -> false)
  in
  let identical =
    off.Kv.end_cycles = on.Kv.end_cycles && off.Kv.latencies = on.Kv.latencies
  in
  (* per-shard latency histograms, merged for the aggregate quantiles *)
  let module H = Atmo_obs.Metrics.Histogram in
  let shard0 = H.make "bench/kv_lat_shard0" and shard1 = H.make "bench/kv_lat_shard1" in
  List.iteri
    (fun i l -> H.observe (if i land 1 = 0 then shard0 else shard1) l)
    on.Kv.latencies;
  let agg = H.make "bench/kv_lat" in
  H.merge ~into:agg shard0;
  H.merge ~into:agg shard1;
  line "%d GET requests per run, %d runs per configuration:" requests reps;
  line "  disabled sink: %8.2f ms" (off_s *. 1000.);
  line "  flight sink:   %8.2f ms  (%d spans, %d causal edges live; %d dropped)"
    (on_s *. 1000.) spans edges
    (Atmo_obs.Flight.total_dropped recorder);
  line "  host-time overhead when traced: %.1f%%"
    (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s);
  line "  request latency (model cycles, merged shards): p50 %d  p99 %d  (n=%d)"
    (H.p50 agg) (H.p99 agg) (H.count agg);
  line "  cycle model: end %d vs %d, latencies identical: %b  -> identical: %b"
    off.Kv.end_cycles on.Kv.end_cycles
    (off.Kv.latencies = on.Kv.latencies)
    identical;
  line "(span instrumentation must never move simulated time)";
  write_bench_json "BENCH_span.json"
    [
      ("bench", J.Str "span_overhead");
      ("requests", J.Num (float_of_int requests));
      ("runs", J.Num (float_of_int reps));
      ("disabled_ms", J.Num (off_s *. 1000.));
      ("flight_ms", J.Num (on_s *. 1000.));
      ("overhead_pct", J.Num (100. *. (on_s -. off_s) /. Float.max 1e-9 off_s));
      ("spans_live", J.Num (float_of_int spans));
      ("causal_edges_live", J.Num (float_of_int edges));
      ("end_cycles", J.Num (float_of_int on.Kv.end_cycles));
      ("lat_p50_cycles", J.Num (float_of_int (H.p50 agg)));
      ("lat_p99_cycles", J.Num (float_of_int (H.p99 agg)));
      ("cycle_identity", J.Bool identical);
    ]

(* ------------------------------------------------------------------ *)
(* dev: device-backend identity and hostile-mode resilience            *)

(* A standalone DMA environment for a device: private memory, an IOMMU
   domain over an identity-style page table, and a bump allocator of
   mapped iova spans. *)
let mk_dev_env ~device =
  let mem = Atmo_hw.Phys_mem.create ~page_count:128 in
  let alloc = Atmo_pmem.Page_alloc.create mem ~reserved_frames:0 in
  let iommu = Atmo_hw.Iommu.create mem in
  let pt = Result.get_ok (Atmo_pt.Page_table.create mem alloc) in
  let next = ref 0x20_0000 in
  let span bytes =
    let base = !next in
    let pages = (bytes + 4095) / 4096 in
    for i = 0 to pages - 1 do
      let frame =
        Option.get (Atmo_pmem.Page_alloc.alloc_4k alloc ~purpose:Atmo_pmem.Page_alloc.User)
      in
      match
        Atmo_pt.Page_table.map_4k pt ~vaddr:(base + (i * 4096)) ~frame ~perm:Pte.perm_rw
      with
      | Ok () -> ()
      | Error _ -> failwith "bench dev: arena map"
    done;
    next := base + (pages * 4096);
    base
  in
  Atmo_hw.Iommu.attach iommu ~device ~root:(Atmo_pt.Page_table.cr3 pt);
  (mem, iommu, span)

(* One NIC behind a first-class interface so the pump is shared. *)
type nic_iface = {
  nic_deliver : bytes -> bool;
  nic_rx : max:int -> bytes list;
  nic_errors : unit -> int;
  nic_set_hostile : Atmo_devmodel.Hostile.t option -> unit;
  nic_clock : Clock.t;
}

let nic_slots = 32

let mk_bench_nic kind =
  let clock = Clock.create () in
  match kind with
  | `Ixgbe ->
    let module N = Atmo_drivers.Ixgbe in
    let mem, iommu, span = mk_dev_env ~device:11 in
    let nic = N.create mem iommu ~device:11 ~clock ~cost in
    let buffers = Array.init nic_slots (fun _ -> (span 2048, 2048)) in
    (match N.setup_rx nic ~ring_iova:(span 4096) ~buffers with
     | Ok () -> ()
     | Error _ -> failwith "bench dev: ixgbe setup");
    { nic_deliver = (fun f -> N.wire_deliver nic f);
      nic_rx = (fun ~max -> N.rx_burst nic ~max);
      nic_errors = (fun () -> N.error_count nic);
      nic_set_hostile = (fun h -> N.set_hostile nic h);
      nic_clock = clock }
  | `Virtio ->
    let module N = Atmo_drivers.Virtio_net in
    let mem, iommu, span = mk_dev_env ~device:14 in
    let nic = N.create mem iommu ~device:14 ~clock ~cost in
    let buffers = Array.init nic_slots (fun _ -> (span 2048, 2048)) in
    (match N.setup_rx nic ~ring_iova:(span 4096) ~buffers with
     | Ok () -> ()
     | Error _ -> failwith "bench dev: virtio setup");
    { nic_deliver = (fun f -> N.wire_deliver nic f);
      nic_rx = (fun ~max -> N.rx_burst nic ~max);
      nic_errors = (fun () -> N.error_count nic);
      nic_set_hostile = (fun h -> N.set_hostile nic h);
      nic_clock = clock }

(* Pump [frames] 64-byte frames through the RX path in bursts of 8;
   returns (frames harvested, model cycles at the end, typed errors). *)
let pump_nic iface ~frames =
  let frame = Bytes.make 64 '\x42' in
  let received = ref 0 in
  for i = 1 to frames do
    ignore (iface.nic_deliver frame);
    if i mod 8 = 0 then received := !received + List.length (iface.nic_rx ~max:8)
  done;
  (* drain until quiescent: hostile duplicates can trail the last burst *)
  let rec drain () =
    let got = List.length (iface.nic_rx ~max:nic_slots) in
    if got > 0 then begin
      received := !received + got;
      drain ()
    end
  in
  drain ();
  (!received, Clock.now iface.nic_clock, iface.nic_errors ())

let dev () =
  section "Device backends: virtio vs ixgbe identity; hostile-mode resilience";
  let module Kv = Atmo_workloads.Kv_demo in
  let module Model = Atmo_devmodel.Model in
  let module Hostile = Atmo_devmodel.Hostile in
  Model.reset ();
  let frames = 5000 in
  (* fault-free throughput identity: same frames, same cycle total *)
  let ixg_rx, ixg_cycles, _ = pump_nic (mk_bench_nic `Ixgbe) ~frames in
  let vio_rx, vio_cycles, _ = pump_nic (mk_bench_nic `Virtio) ~frames in
  let delivery_identity = ixg_rx = vio_rx && ixg_cycles = vio_cycles in
  line "fault-free RX, %d frames:" frames;
  line "  ixgbe:      %5d harvested, %8d cycles" ixg_rx ixg_cycles;
  line "  virtio-net: %5d harvested, %8d cycles  -> identity: %b" vio_rx vio_cycles
    delivery_identity;
  (* kv workload identity across block and NIC backends *)
  let base = Kv.run () in
  let vblk = Kv.run ~blk:`Virtio () in
  let kv_blk_identity =
    base.Kv.end_cycles = vblk.Kv.end_cycles
    && base.Kv.latencies = vblk.Kv.latencies
    && base.Kv.replies = vblk.Kv.replies
  in
  let nixg = Kv.run ~nic:`Ixgbe () in
  let nvio = Kv.run ~nic:`Virtio () in
  let kv_nic_identity =
    nixg.Kv.end_cycles = nvio.Kv.end_cycles
    && nixg.Kv.latencies = nvio.Kv.latencies
    && nixg.Kv.replies = nvio.Kv.replies
    && nixg.Kv.replies = base.Kv.replies
  in
  line "kv workload: nvme vs virtio-blk bit-identical: %b" kv_blk_identity;
  line "kv workload: ixgbe vs virtio-net bit-identical: %b (replies match IPC-only run)"
    kv_nic_identity;
  (* hostile mode: a fixed fault budget may cost at most the budget in
     delivered frames, and the ledgers must balance at quiescence *)
  let budget = 64 in
  let hostile_run kind seed =
    let iface = mk_bench_nic kind in
    iface.nic_set_hostile (Some (Hostile.create ~budget ~seed ()));
    let rx, cycles, errors = pump_nic iface ~frames in
    iface.nic_set_hostile None;
    ignore (iface.nic_rx ~max:nic_slots);
    (rx, cycles, errors)
  in
  let hixg_rx, hixg_cycles, hixg_err = hostile_run `Ixgbe 42 in
  let hvio_rx, hvio_cycles, hvio_err = hostile_run `Virtio 43 in
  let ratio_of rx = float_of_int rx /. float_of_int frames in
  let hostile_ratio = Float.min (ratio_of hixg_rx) (ratio_of hvio_rx) in
  line "hostile RX (budget %d fault injections), %d frames:" budget frames;
  line "  ixgbe:      %5d harvested (%.4f), %8d cycles, %3d typed errors" hixg_rx
    (ratio_of hixg_rx) hixg_cycles hixg_err;
  line "  virtio-net: %5d harvested (%.4f), %8d cycles, %3d typed errors" hvio_rx
    (ratio_of hvio_rx) hvio_cycles hvio_err;
  (* every model registered above must pass Driver_lint at quiescence *)
  let lint_clean =
    match Kernel.boot Kernel.default_boot with
    | Error _ -> false
    | Ok (k, _) ->
      Atmo_san.Report.clear ();
      let fresh = Atmo_san.Driver_lint.lint k in
      Atmo_san.Report.clear ();
      fresh = 0
  in
  line "driver lint at quiescence over %d device model(s): %s"
    (List.length (Model.all ()))
    (if lint_clean then "clean" else "VIOLATIONS");
  Model.reset ();
  write_bench_json "BENCH_dev.json"
    [
      ("bench", J.Str "dev_backends");
      ("frames", J.Num (float_of_int frames));
      ("ixgbe_rx", J.Num (float_of_int ixg_rx));
      ("virtio_rx", J.Num (float_of_int vio_rx));
      ("ixgbe_cycles", J.Num (float_of_int ixg_cycles));
      ("virtio_cycles", J.Num (float_of_int vio_cycles));
      ("virtio_ixgbe_delivery_identity", J.Bool delivery_identity);
      ("kv_blk_identity", J.Bool kv_blk_identity);
      ("kv_nic_identity", J.Bool kv_nic_identity);
      ("hostile_budget", J.Num (float_of_int budget));
      ("hostile_typed_errors", J.Num (float_of_int (hixg_err + hvio_err)));
      ("hostile_delivery_ratio", J.Num hostile_ratio);
      ("hostile_lint_clean", J.Bool lint_clean);
    ]

(* ------------------------------------------------------------------ *)
(* verif: incremental dirty-set re-check vs full discharge             *)

let verif () =
  section "Incremental verification: dirty-set re-check vs full discharge";
  line "(arm the dirty tracker, discharge the full suite once, apply one";
  line " syscall, then re-discharge: only obligations whose read set";
  line " intersects the transition's dirty set may run; verdicts must be";
  line " bit-identical to an oracle full re-check)";
  line "";
  match Catalog.build_world ~scale:3 with
  | Error msg ->
    line "world failed to build: %s" msg;
    exit 1
  | Ok (k, init) ->
    let suite = Catalog.suite_for ~scale:3 k in
    let n = List.length suite in
    Incremental.arm ();
    Fun.protect ~finally:Incremental.disarm (fun () ->
        let r_full = Incremental.run ~threads:1 suite in
        line "full discharge:        %4d obligations  %8.1f ms  %s" n
          (r_full.Runner.wall_s *. 1000.)
          (if Runner.all_ok r_full then "ok" else "FAIL");
        ignore (Kernel.step k ~thread:init Syscall.Yield);
        let dirty = Incremental.dirty_ids () in
        line "transition: yield      dirty = {%s}" (String.concat "; " dirty);
        let r_inc = Incremental.run ~threads:1 suite in
        line "incremental re-check:  %4d obligations  %8.1f ms  re-checked %d, reused %d"
          n
          (r_inc.Runner.wall_s *. 1000.)
          r_inc.Runner.rechecked r_inc.Runner.reused;
        (* oracle: a full re-discharge of the same state must agree on
           every (name, verdict, detail) triple *)
        let r_oracle = Runner.run ~threads:1 suite in
        let verdicts (r : Runner.report) =
          List.map
            (fun (x : Obligation.result) ->
              (x.Obligation.name, x.Obligation.ok, x.Obligation.detail))
            r.Runner.results
        in
        let identical = verdicts r_inc = verdicts r_oracle in
        let fraction = float_of_int r_inc.Runner.rechecked /. float_of_int (max 1 n) in
        let speedup =
          r_full.Runner.wall_s /. Float.max 1e-6 r_inc.Runner.wall_s
        in
        line "verdicts vs oracle full re-check: %s"
          (if identical then "bit-identical" else "DIVERGED");
        line "re-check fraction: %.1f%% (budget 20%%)   speedup: %.1fx (floor 5x)"
          (100. *. fraction) speedup;
        write_bench_json "BENCH_verif.json"
          [
            ("bench", J.Str "incremental_verif");
            ("obligations", J.Num (float_of_int n));
            ("full_ms", J.Num (r_full.Runner.wall_s *. 1000.));
            ("incremental_ms", J.Num (r_inc.Runner.wall_s *. 1000.));
            ("speedup", J.Num speedup);
            ("rechecked", J.Num (float_of_int r_inc.Runner.rechecked));
            ("reused", J.Num (float_of_int r_inc.Runner.reused));
            ("recheck_fraction", J.Num fraction);
            ("recheck_within_budget", J.Bool (fraction <= 0.20));
            ("verdicts_identical", J.Bool identical);
            ("all_ok", J.Bool (Runner.all_ok r_inc && Runner.all_ok r_oracle));
          ])

(* ------------------------------------------------------------------ *)
(* smp: the broken-up big lock — scaling curve plus the on/off oracle  *)

(* The kv-style IPC workload: 8 sender/receiver pairs, one endpoint
   each, ~500 user cycles of think per kernel entry.  Under the big
   lock, kernel time serializes machine-wide and the curve saturates
   near 1.5x; under the fine-grained regime each pair serializes only
   on its endpoint shard and its CPUs, so the curve tracks the CPU
   count.  Both regimes drive the identical kernel — the oracle
   asserts bit-identical returns, scheduling decisions and abstract
   state at every point of the curve. *)
let smp_pairs = 8
let smp_think = 500

let smp_build_world () =
  let boot_params =
    { Kernel.default_boot with Kernel.cpus = Atmo_util.Iset.of_range ~lo:0 ~hi:8 }
  in
  match Kernel.boot boot_params with
  | Error e -> Error (Format.asprintf "boot: %a" Atmo_util.Errno.pp e)
  | Ok (k, init) ->
    let pm = k.Kernel.pm in
    let new_thread () =
      match Kernel.step k ~thread:init Syscall.New_thread with
      | Syscall.Rptr t -> t
      | r -> failwith (Format.asprintf "new_thread -> %a" Syscall.pp_ret r)
    in
    let programs =
      List.concat
        (List.init smp_pairs (fun p ->
             let receiver = new_thread () in
             let sender = new_thread () in
             let ep =
               match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = p }) with
               | Syscall.Rptr e -> e
               | r -> failwith (Format.asprintf "new_endpoint -> %a" Syscall.pp_ret r)
             in
             List.iter
               (fun th ->
                 Atmo_pm.Perm_map.update pm.Atmo_pm.Proc_mgr.thrd_perms ~ptr:th
                   (fun t -> Atmo_pm.Thread.set_slot t 0 (Some ep)))
               [ receiver; sender ];
             [
               { Atmo_sim.Smp.thread = receiver; think_cycles = smp_think;
                 call_of = (fun _ -> Syscall.Recv { slot = 0 }) };
               { Atmo_sim.Smp.thread = sender; think_cycles = smp_think;
                 call_of =
                   (fun i ->
                     Syscall.Send { slot = 0; msg = Message.scalars_only [ (p * 1000) + i ] }) };
             ]))
    in
    Ok (k, programs)

(* One run: fresh world, one regime, one CPU count.  The digest folds
   every observed step — entering CPU, iteration, thread, pretty-printed
   return and the per-CPU currents snapshot — so two digests agree iff
   the kernel made the same decisions in the same order. *)
let smp_run ~regime ~cpus ~iterations =
  match smp_build_world () with
  | Error msg -> Error msg
  | Ok (k, programs) ->
    let digest = Buffer.create 4096 in
    let observe ~cpu ~iter ~thread ret =
      Buffer.add_string digest
        (Format.asprintf "%d/%d/%x:%a|" cpu iter thread Syscall.pp_ret ret);
      List.iter
        (fun c ->
          Buffer.add_string digest
            (match c with Some t -> Printf.sprintf "%x," t | None -> "-,"))
        (Atmo_pm.Proc_mgr.currents_list k.Kernel.pm);
      Buffer.add_char digest ';'
    in
    (match
       Atmo_sim.Smp.run ~regime ~steal_seed:42 ~observe k ~cost ~cpus ~programs
         ~iterations
     with
     | Error msg -> Error msg
     | Ok stats ->
       Ok (stats, Buffer.contents digest, Atmo_core.Abstraction.abstract k))

let smp () =
  section "SMP: per-CPU run queues + sharded endpoint locks vs the big lock";
  line "(kv workload: %d IPC pairs, think %d cycles; both regimes drive the"
    smp_pairs smp_think;
  line " identical kernel — only the lock cycle-model differs, so the on/off";
  line " oracle demands bit-identical returns, scheduling and abstract state)";
  line "";
  let iterations = 100 in
  let cpu_points = [ 1; 2; 4; 8 ] in
  let results =
    List.filter_map
      (fun cpus ->
        match
          ( smp_run ~regime:Atmo_sim.Smp.Big_lock ~cpus ~iterations,
            smp_run ~regime:Atmo_sim.Smp.Fine_grained ~cpus ~iterations )
        with
        | Ok big, Ok fine -> Some (cpus, big, fine)
        | Error msg, _ | _, Error msg ->
          line "  %d CPUs: run failed: %s" cpus msg;
          None)
      cpu_points
  in
  match results with
  | [] ->
    line "smp bench failed: no data points";
    exit 1
  | (_, (base_big, _, _), (base_fine, _, _)) :: _ ->
    let tp s = Atmo_sim.Smp.throughput s in
    let speedup base s = tp s /. Float.max 1e-9 (tp base) in
    line "%4s  %28s  %28s  %s" "CPUs" "big lock" "fine-grained" "oracle";
    let oracle_all = ref true in
    let curve =
      List.map
        (fun (cpus, (sb, db, ab), (sf, df, af)) ->
          let identical =
            db = df && Atmo_spec.Abstract_state.equal ab af
            && sb.Atmo_sim.Smp.placement = sf.Atmo_sim.Smp.placement
          in
          if not identical then oracle_all := false;
          line "%4d  %10.2f M/s (%5.2fx)      %10.2f M/s (%5.2fx)      %s" cpus
            (tp sb /. 1e6) (speedup base_big sb) (tp sf /. 1e6)
            (speedup base_fine sf)
            (if identical then "identical" else "DIVERGED");
          ( cpus,
            J.Obj
              [
                ("big_msyscalls_s", J.Num (tp sb /. 1e6));
                ("fine_msyscalls_s", J.Num (tp sf /. 1e6));
                ("big_speedup", J.Num (speedup base_big sb));
                ("fine_speedup", J.Num (speedup base_fine sf));
                ("fine_steals", J.Num (float_of_int sf.Atmo_sim.Smp.steals));
                ( "fine_lock_wait_by_cpu",
                  J.Arr
                    (Array.to_list
                       (Array.map
                          (fun w -> J.Num (float_of_int w))
                          sf.Atmo_sim.Smp.lock_wait_by_cpu)) );
                ("oracle_identical", J.Bool identical);
              ] ))
        results
    in
    let speedup_at cpus regime_sel =
      List.find_map
        (fun (c, (sb, _, _), (sf, _, _)) ->
          if c = cpus then
            Some
              (match regime_sel with
               | `Big -> speedup base_big sb
               | `Fine -> speedup base_fine sf)
          else None)
        results
    in
    let fine8 = Option.value ~default:0. (speedup_at 8 `Fine) in
    let big8 = Option.value ~default:0. (speedup_at 8 `Big) in
    line "";
    line "8-CPU speedup: big lock %.2fx (saturates at the lock), fine-grained %.2fx"
      big8 fine8;
    line "oracle across the curve: %s"
      (if !oracle_all then "bit-identical" else "DIVERGED");
    write_bench_json "BENCH_smp.json"
      [
        ("bench", J.Str "smp_scaling");
        ("workload", J.Str (Printf.sprintf "kv ipc, %d pairs, think %d" smp_pairs smp_think));
        ("iterations", J.Num (float_of_int iterations));
        ( "curve",
          J.Obj (List.map (fun (c, v) -> (string_of_int c, v)) curve) );
        ("big_speedup_8cpu", J.Num big8);
        ("fine_speedup_8cpu", J.Num fine8);
        ("oracle_identity", J.Bool !oracle_all);
      ]

(* ------------------------------------------------------------------ *)
(* report: merge BENCH_*.json, enforce floors, diff the last summary   *)

let report () =
  section "Bench report: merge BENCH_*.json, enforce floors, diff the last summary";
  let files =
    [ "BENCH_obs.json"; "BENCH_san.json"; "BENCH_tlb.json"; "BENCH_ipc.json";
      "BENCH_span.json"; "BENCH_dev.json"; "BENCH_verif.json"; "BENCH_smp.json" ]
  in
  let loaded =
    List.filter_map
      (fun f ->
        if Sys.file_exists f then (
          match J.of_file f with
          | Ok v -> Some (f, v)
          | Error m ->
            line "  %s: unreadable (%s); skipped" f m;
            None)
        else begin
          line "  %s: missing (run its bench to regenerate); skipped" f;
          None
        end)
      files
  in
  let key_of f = String.sub f 6 (String.length f - 11) (* BENCH_<key>.json *) in
  let prev =
    if Sys.file_exists "BENCH_summary.json" then
      match J.of_file "BENCH_summary.json" with Ok v -> Some v | Error _ -> None
    else None
  in
  let summary = J.Obj (List.map (fun (f, v) -> (key_of f, v)) loaded) in
  (* advisory deltas: every numeric leaf against the previous summary *)
  let rec leaves prefix v acc =
    match v with
    | J.Obj kvs ->
      List.fold_left (fun acc (k, x) -> leaves (prefix ^ "." ^ k) x acc) acc kvs
    | J.Num n -> (prefix, n) :: acc
    | _ -> acc
  in
  (match prev with
   | None -> line "  no previous BENCH_summary.json; skipping deltas"
   | Some p ->
     let old_leaves = leaves "" p [] in
     let shown = ref 0 in
     List.iter
       (fun (k, n) ->
         match List.assoc_opt k old_leaves with
         | Some o when Float.abs o > 1e-9 ->
           let d = 100. *. (n -. o) /. Float.abs o in
           if Float.abs d >= 5. then begin
             incr shown;
             line "  delta %-50s %12.3f -> %12.3f  (%+.1f%%)" k o n d
           end
         | _ -> ())
       (List.rev (leaves "" summary []));
     if !shown = 0 then line "  no numeric field moved by 5%% or more"
     else line "  (%d field(s) moved >= 5%%; host-time deltas are advisory)" !shown);
  J.to_file "BENCH_summary.json" summary;
  line "  wrote BENCH_summary.json (%d bench file(s) merged)" (List.length loaded);
  (* hard floors: a regression here fails the gate; a bench whose file
     is missing was already reported skipped above *)
  let failures = ref 0 in
  let floor_num name p ~min_v =
    match J.to_float (J.path p summary) with
    | None -> line "  floor %-42s SKIP (field absent)" name
    | Some v ->
      if v >= min_v then line "  floor %-42s ok    (%.3f >= %.3f)" name v min_v
      else begin
        incr failures;
        line "  floor %-42s FAIL  (%.3f < %.3f)" name v min_v
      end
  in
  let floor_max name p ~max_v =
    match J.to_float (J.path p summary) with
    | None -> line "  floor %-42s SKIP (field absent)" name
    | Some v ->
      if v <= max_v then line "  floor %-42s ok    (%.3f <= %.3f)" name v max_v
      else begin
        incr failures;
        line "  floor %-42s FAIL  (%.3f > %.3f)" name v max_v
      end
  in
  let floor_true name p =
    match J.to_bool (J.path p summary) with
    | None -> line "  floor %-42s SKIP (field absent)" name
    | Some true -> line "  floor %-42s ok" name
    | Some false ->
      incr failures;
      line "  floor %-42s FAIL" name
  in
  floor_true "obs cycle identity" [ "obs"; "cycle_identity" ];
  floor_max "obs traced overhead <= 100%" [ "obs"; "overhead_pct" ] ~max_v:100.0;
  floor_max "obs zero drops" [ "obs"; "events_dropped" ] ~max_v:0.0;
  floor_true "obs lossless accounting" [ "obs"; "accounting_exact" ];
  floor_true "san cycle identity" [ "san"; "cycle_identity" ];
  floor_true "span cycle identity" [ "span"; "cycle_identity" ];
  floor_true "tlb replay identity" [ "tlb"; "replay_identity" ];
  floor_num "tlb load reduction >= 5x" [ "tlb"; "load_reduction" ] ~min_v:5.0;
  floor_num "ipc map-op reduction >= 2x"
    [ "ipc"; "rendezvous_machinery_map_op_reduction" ]
    ~min_v:2.0;
  floor_true "dev virtio/ixgbe delivery identity" [ "dev"; "virtio_ixgbe_delivery_identity" ];
  floor_true "dev kv blk identity" [ "dev"; "kv_blk_identity" ];
  floor_true "dev kv nic identity" [ "dev"; "kv_nic_identity" ];
  floor_num "dev hostile delivery >= 0.9" [ "dev"; "hostile_delivery_ratio" ] ~min_v:0.9;
  floor_true "dev hostile lint clean" [ "dev"; "hostile_lint_clean" ];
  floor_true "verif incremental verdict identity" [ "verif"; "verdicts_identical" ];
  floor_true "verif incremental all ok" [ "verif"; "all_ok" ];
  floor_true "verif re-check within 20% budget" [ "verif"; "recheck_within_budget" ];
  floor_num "verif incremental speedup >= 5x" [ "verif"; "speedup" ] ~min_v:5.0;
  floor_true "smp big-vs-fine oracle identity" [ "smp"; "oracle_identity" ];
  floor_num "smp fine-grained 8-cpu speedup >= 2.5x"
    [ "smp"; "fine_speedup_8cpu" ] ~min_v:2.5;
  if !failures > 0 then begin
    line "  %d floor(s) FAILED" !failures;
    exit 1
  end
  else line "  all floors hold"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)

let bechamel () =
  section "Bechamel micro-benchmarks (one per table/figure; wall time of the real code)";
  let open Bechamel in
  let pt = Catalog.build_pt ~mappings:512 in
  let lb =
    Atmo_net.Maglev.create
      ~backends:(List.init 8 (fun i -> Printf.sprintf "b%d" i))
      ~table_size:65537
  in
  let store = Atmo_net.Kv_store.create ~entries:65_537 in
  for i = 0 to 9_999 do
    ignore
      (Atmo_net.Kv_store.set store
         ~key:(Bytes.of_string (Printf.sprintf "k%05d" i))
         ~value:(Bytes.make 16 'v'))
  done;
  let ipc_world =
    match Kernel.boot Kernel.default_boot with
    | Ok (k, init) ->
      (match Kernel.step k ~thread:init (Syscall.New_endpoint { slot = 0 }) with
       | Syscall.Rptr _ -> Some (k, init)
       | _ -> None)
    | Error _ -> None
  in
  let flow = Atmo_net.Packet.flow_of_ints ~src:1 ~dst:2 ~sport:1234 ~dport:80 in
  let frame = Atmo_net.Packet.build flow ~payload:(Bytes.make 22 'x') in
  let http_req = "GET /index.html HTTP/1.1\r\nHost: atmo\r\nConnection: keep-alive\r\n\r\n" in
  let tests =
    [
      Test.make ~name:"table2/pt-flat-check"
        (Staged.stage (fun () -> ignore (Atmo_pt.Pt_refine.all pt)));
      Test.make ~name:"table2/pt-recursive-check"
        (Staged.stage (fun () -> ignore (Atmo_pt.Nros_pt.all pt)));
      Test.make ~name:"table3/ipc-send-nb"
        (Staged.stage (fun () ->
             match ipc_world with
             | Some (k, init) ->
               ignore
                 (Kernel.step k ~thread:init
                    (Syscall.Send_nb { slot = 0; msg = Message.scalars_only [ 1 ] }))
             | None -> ()));
      Test.make ~name:"fig2/kernel-total-wf"
        (Staged.stage (fun () ->
             match ipc_world with
             | Some (k, _) -> ignore (Atmo_core.Invariants.total_wf k)
             | None -> ()));
      Test.make ~name:"fig4/packet-parse-hash"
        (Staged.stage (fun () -> ignore (Atmo_net.Packet.five_tuple_hash frame)));
      Test.make ~name:"fig5/nvme-submit-poll"
        (Staged.stage (fun () ->
             let clock = Clock.create () in
             let dev = Atmo_drivers.Nvme.create ~clock ~cost ~capacity_blocks:64 in
             ignore (Atmo_drivers.Nvme.submit_read dev ~lba:1);
             ignore (Atmo_drivers.Nvme.wait_all dev)));
      Test.make ~name:"fig6/maglev-lookup"
        (Staged.stage (fun () -> ignore (Atmo_net.Maglev.lookup lb 0xdeadbeefL)));
      Test.make ~name:"fig6/http-parse"
        (Staged.stage (fun () -> ignore (Atmo_net.Http.parse_request http_req)));
      Test.make ~name:"fig7/kv-get"
        (Staged.stage (fun () ->
             ignore (Atmo_net.Kv_store.get store ~key:(Bytes.of_string "k00042"))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"atmo" tests) in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let merged = Analyze.merge ols [ instance ] [ results ] in
  Hashtbl.iter
    (fun _witness tbl ->
      let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) tbl [] in
      List.iter
        (fun (name, result) ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> line "%-36s %12.1f ns/op" name t
          | Some [] | None -> line "%-36s (no estimate)" name)
        (List.sort compare rows))
    merged

(* ------------------------------------------------------------------ *)

let all () =
  table1 ();
  table2 ();
  ablation ();
  table3 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ();
  fig6 ();
  fig7 ();
  obs ();
  san ();
  tlb ();
  ipc ();
  span ();
  dev ();
  verif ();
  smp ();
  bechamel ()

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "fig4" -> fig4 ()
  | "fig5" -> fig5 ()
  | "fig6" -> fig6 ()
  | "fig7" -> fig7 ()
  | "ablation" -> ablation ()
  | "obs" -> obs ()
  | "san" -> san ()
  | "tlb" -> tlb ()
  | "ipc" -> ipc ()
  | "span" -> span ()
  | "dev" -> dev ()
  | "verif" -> verif ()
  | "smp" -> smp ()
  | "report" -> report ()
  | "bechamel" -> bechamel ()
  | "all" -> all ()
  | other ->
    Format.eprintf "unknown benchmark %S@." other;
    exit 1
